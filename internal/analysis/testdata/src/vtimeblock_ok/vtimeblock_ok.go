// Package vtimeblock_ok uses the kernel's own primitives inside proc
// context and keeps real synchronization outside it.
package vtimeblock_ok

import (
	"sync"

	"vtime"
)

var results = make(chan int, 16)

func spawn(e *vtime.Engine, c *vtime.Cond) {
	e.Go("worker", func(p *vtime.Proc) {
		p.Sleep(3)
		c.Wait(p) // virtual-time wait: fine
		c.Broadcast()
	})
	e.At(10, c.Broadcast)
}

// harness runs OUTSIDE the virtual-time universe (it is not passed to
// Engine.Go/At/After), so real primitives are fine here.
func harness() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	results <- 1
	return <-results
}

// escape: a deliberate, reviewed real-channel use in proc context.
func spawnEscaped(e *vtime.Engine) {
	e.Go("escaped", func(p *vtime.Proc) {
		results <- 1 //lmovet:allow vtimeblock
	})
}
