// Package hotalloc_bad puts every allocation-introducing construct
// the hotalloc analyzer knows about inside annotated hot functions.
package hotalloc_bad

import "fmt"

type event struct{ t, seq int }

type sink interface{ accept() }

func consume(v interface{}) {}

//lmovet:hotpath
func format(n int) string {
	return fmt.Sprintf("ev-%d", n) // want `fmt.Sprintf allocates`
}

//lmovet:hotpath
func closureCapture(base int) func() int {
	return func() int { return base + 1 } // want `closure captures enclosing variables`
}

//lmovet:hotpath
func growLoop(n int) []event {
	var out []event
	for i := 0; i < n; i++ {
		out = append(out, event{t: i}) // want `append to out grows an un-preallocated slice`
	}
	return out
}

//lmovet:hotpath
func literalGrow(n int) []int {
	xs := []int{}
	xs = append(xs, n) // want `append to xs grows an un-preallocated slice`
	return xs
}

//lmovet:hotpath
func boxes(e event) {
	consume(e) // want `passing hotalloc_bad.event to interface parameter boxes it`
	consume(7) // want `passing int to interface parameter boxes it`
}

//lmovet:hotpath
func escaped(e event) {
	consume(e) //lmovet:allow hotalloc
}
