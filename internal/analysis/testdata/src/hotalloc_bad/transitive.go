// Transitive findings: a hot function calling an allocating callee is
// flagged at the call site, with the witness chain and root construct
// named.
package hotalloc_bad

import "fmt"

func buildLabel(n int) string {
	return fmt.Sprintf("lbl-%d", n)
}

func mid(n int) string {
	return buildLabel(n)
}

//lmovet:hotpath
func hotCaller(n int) string {
	return buildLabel(n) // want `call to buildLabel allocates .fmt.Sprintf call at .*; hot path hotCaller must stay allocation-free`
}

//lmovet:hotpath
func hotDeep(n int) string {
	return mid(n) // want `call to mid → buildLabel allocates .fmt.Sprintf call at .*; hot path hotDeep must stay allocation-free`
}
