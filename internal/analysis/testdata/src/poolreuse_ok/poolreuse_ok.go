// Package poolreuse_ok exercises the pooled-object patterns the
// poolreuse analyzer must accept: branch-exclusive put/use, deferred
// puts, ownership handoffs and reviewed abandonment.
package poolreuse_ok

import "sync"

type buf struct {
	b []byte
}

var pool = sync.Pool{New: func() any { return new(buf) }}

// branchPut puts on the fast path and keeps using the object on the
// slow path: the put only governs its own block.
func branchPut(fast bool) {
	b := pool.Get().(*buf)
	if fast {
		pool.Put(b)
		return
	}
	b.b = b.b[:0]
	pool.Put(b)
}

// elseUse mirrors simnet.Fire: release in one branch, consume in the
// other.
func elseUse(deliver bool) int {
	b := pool.Get().(*buf)
	if !deliver {
		pool.Put(b)
		return 0
	} else {
		n := len(b.b)
		pool.Put(b)
		return n
	}
}

// deferredPut covers every return, early or not.
func deferredPut(n int) int {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	if n < 0 {
		return -1
	}
	return n
}

// handoff returns the object: ownership moves to the caller.
func handoff() *buf {
	return pool.Get().(*buf)
}

func namedHandoff() *buf {
	b := pool.Get().(*buf)
	b.b = b.b[:0]
	return b
}

// stash transfers ownership into a longer-lived structure.
type holder struct {
	cur *buf
}

func stash(h *holder) {
	b := pool.Get().(*buf)
	h.cur = b
}

// abandon leaves the object for another goroutine to release — the
// reviewed, annotated handoff (simnet's abandoned-transit pattern).
func abandon(timedOut bool) {
	b := pool.Get().(*buf)
	if timedOut {
		//lmovet:allow poolreuse
		return
	}
	pool.Put(b)
}
