// Package poolreuse_bad breaks the pooled-object lifecycle in every
// way the poolreuse analyzer must catch, for both sync.Pool and a
// hand-rolled freelist.
package poolreuse_bad

import "sync"

type buf struct {
	b []byte
}

var pool = sync.Pool{New: func() any { return new(buf) }}

func useAfterPut() {
	b := pool.Get().(*buf)
	pool.Put(b)
	b.b = nil // want `use of b after it was returned to the pool`
}

func doublePut() {
	b := pool.Get().(*buf)
	pool.Put(b)
	pool.Put(b) // want `b returned to the pool twice`
}

func earlyReturnLeak(n int) int {
	b := pool.Get().(*buf)
	if n < 0 {
		return -1 // want `return leaks pooled object b`
	}
	pool.Put(b)
	return n
}

func returnAfterPut() int {
	b := pool.Get().(*buf)
	pool.Put(b)
	return len(b.b) // want `use of b after it was returned to the pool`
}

// Hand-rolled freelist, shaped like simnet's message pool.
type msg struct {
	id int
}

var freeMsgs []*msg

func getMsg() *msg {
	if n := len(freeMsgs); n > 0 {
		m := freeMsgs[n-1]
		freeMsgs = freeMsgs[:n-1]
		return m
	}
	return new(msg)
}

func putMsg(m *msg) {
	m.id = 0
	freeMsgs = append(freeMsgs, m)
}

func freelistUseAfterPut() {
	m := getMsg()
	putMsg(m)
	m.id = 7 // want `use of m after it was returned to the pool`
}

func freelistLeak(fail bool) error {
	m := getMsg()
	if fail {
		return errFailed // want `return leaks pooled object m`
	}
	putMsg(m)
	return nil
}

type simpleErr struct{}

func (simpleErr) Error() string { return "failed" }

var errFailed error = simpleErr{}
