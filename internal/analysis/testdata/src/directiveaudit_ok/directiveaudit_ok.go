// Package directiveaudit_ok holds only live directives: every
// //lmovet: comment governs something an analyzer actually consulted.
package directiveaudit_ok

import "fmt"

func sum(m map[string]int) int {
	t := 0
	//lmovet:commutative
	for _, v := range m {
		t += v
	}
	return t
}

//lmovet:hotpath
func hot(n int) string {
	//lmovet:allow hotalloc
	return fmt.Sprintf("x-%d", n)
}
