// Package directiveaudit_bad accumulates stale and malformed
// //lmovet: directives next to genuine ones, so the audit must
// separate the two.
package directiveaudit_bad

import "fmt"

// genuine: the directive governs a real map range that maporder
// consults.
func sum(m map[string]int) int {
	t := 0
	//lmovet:commutative
	for _, v := range m {
		t += v
	}
	return t
}

// genuine: hotpath governs the declaration, allow suppresses a real
// hotalloc finding.
//
//lmovet:hotpath
func hot(n int) string {
	//lmovet:allow hotalloc
	return fmt.Sprintf("x-%d", n)
}

func staleCommutative() int {
	x := 1
	x++ //lmovet:commutative // want `stale lmovet:commutative`
	return x
}

var answer = 42 //lmovet:hotpath // want `stale lmovet:hotpath`

func staleAllow() int {
	return answer //lmovet:allow hotalloc // want `stale lmovet:allow hotalloc`
}

func typoKind() {} //lmovet:alow hotalloc // want `unknown lmovet directive "alow"`

func emptyAllow() {} //lmovet:allow // want `lmovet:allow names no analyzer`

func ghostAnalyzer() {} //lmovet:allow nosuchanalyzer // want `lmovet:allow names unknown analyzer "nosuchanalyzer"`
