// Package atomicmix_bad mixes atomic and plain access to the same
// fields without a guarding mutex — the races the atomicmix analyzer
// must catch.
package atomicmix_bad

import "sync/atomic"

type counter struct {
	hits int64
	val  atomic.Int64
}

func (c *counter) incAtomic() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) report() int64 {
	return c.hits // want `plain read of field hits, which is also accessed via sync/atomic`
}

func (c *counter) reset() {
	c.hits = 0 // want `plain write of field hits, which is also accessed via sync/atomic`
}

func (c *counter) bump() {
	c.val.Add(1)
}

func (c *counter) leak() int64 {
	v := c.val // want `plain read of field val, which is also accessed via sync/atomic`
	return v.Load()
}
