package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, analysis.Atomicmix, "atomicmix_bad", "atomicmix_ok")
}
