package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is the package-level static call graph the interprocedural
// analyzers share (vtimeblock's transitive proc-context propagation,
// hotalloc's "allocates" summaries, snapshotmut's publication
// summaries, poolreuse's release-function recognition). It is built
// once per package, lazily, and cached on the Package — every analyzer
// that asks a Pass for it sees the same graph.
//
// Nodes are the package's declared functions and methods (anything
// with a *types.Func and a body). Edges are static calls: a direct
// call to a package function, a method call on a concrete receiver,
// and — the method-set resolution — a call through an interface
// method, resolved to every concrete type declared in this package
// whose method set satisfies the interface. Calls through function
// values, and calls into other packages, are not edges: the graph is
// deliberately package-local, matching the per-package Pass contract.
type CallGraph struct {
	fns   []*types.Func // declared functions, source order
	decls map[*types.Func]*ast.FuncDecl
	out   map[*types.Func][]CallEdge

	pass *Pass
	// impls indexes the package's concrete methods by name, for
	// interface-method resolution: name -> methods with that name.
	impls map[string][]*types.Func
}

// CallEdge is one static call: Caller invokes Callee at Pos. For a
// call resolved through an interface method, one edge per satisfying
// concrete method is produced, all at the same position.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
}

// CallGraph returns the package's call graph, building it on first
// use. The graph is shared by every analyzer run on the package.
func (p *Pass) CallGraph() *CallGraph {
	if p.pkg != nil && p.pkg.cg != nil {
		return p.pkg.cg
	}
	g := buildCallGraph(p)
	if p.pkg != nil {
		p.pkg.cg = g
	}
	return g
}

func buildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		decls: map[*types.Func]*ast.FuncDecl{},
		out:   map[*types.Func][]CallEdge{},
		pass:  pass,
		impls: map[string][]*types.Func{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.fns = append(g.fns, obj)
			g.decls[obj] = fd
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				g.impls[obj.Name()] = append(g.impls[obj.Name()], obj)
			}
		}
	}
	sort.Slice(g.fns, func(i, j int) bool {
		return g.decls[g.fns[i]].Pos() < g.decls[g.fns[j]].Pos()
	})
	for _, fn := range g.fns {
		g.out[fn] = g.edgesIn(fn, g.decls[fn].Body)
	}
	return g
}

// Functions returns the declared functions in source order.
func (g *CallGraph) Functions() []*types.Func { return g.fns }

// Decl returns fn's declaration, or nil when fn is not declared (with
// a body) in this package.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Callees returns fn's outgoing static call edges in call-site order.
func (g *CallGraph) Callees(fn *types.Func) []CallEdge { return g.out[fn] }

// CalleesIn resolves the static same-package call edges inside an
// arbitrary body (typically a function literal handed to a scheduling
// call), attributed to no caller. Nested function literals are
// included: their calls execute under the same dynamic context the
// analyzers track.
func (g *CallGraph) CalleesIn(body ast.Node) []CallEdge {
	return g.edgesIn(nil, body)
}

func (g *CallGraph) edgesIn(caller *types.Func, body ast.Node) []CallEdge {
	var edges []CallEdge
	seen := map[*types.Func]bool{}
	add := func(callee *types.Func, pos token.Pos) {
		if callee == nil || g.decls[callee] == nil || seen[callee] {
			return
		}
		seen[callee] = true
		edges = append(edges, CallEdge{Caller: caller, Callee: callee, Pos: pos})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee, _ = g.pass.TypesInfo.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = g.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		}
		if callee == nil || callee.Pkg() != g.pass.Pkg {
			return true
		}
		if impls := g.resolveInterface(callee); impls != nil {
			for _, m := range impls {
				add(m, call.Pos())
			}
			return true
		}
		add(callee, call.Pos())
		return true
	})
	return edges
}

// resolveInterface resolves a call through an interface method to the
// concrete methods of this package's types that satisfy the interface,
// using the type-checker's method sets. Returns nil when callee is not
// an interface method.
func (g *CallGraph) resolveInterface(callee *types.Func) []*types.Func {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, m := range g.impls[callee.Name()] {
		recv := m.Type().(*types.Signature).Recv().Type()
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			out = append(out, m)
		}
	}
	return out
}

// Reachable returns the set of declared functions reachable from the
// roots (inclusive) through same-package static calls.
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var work []*types.Func
	for _, r := range roots {
		if g.decls[r] != nil && !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		for _, e := range g.out[fn] {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return seen
}

// PathsTo is the summary-propagation primitive: given target functions
// that directly exhibit a property (they allocate, they publish a
// pointer, ...), it computes for every function that can reach a
// target the first call edge of one such path. Targets themselves map
// to nil. Iteration is in source order with call-site-ordered edges,
// so the chosen witness path is deterministic.
//
// Callers reconstruct a full witness chain by following the returned
// edges: fn -> edge.Callee -> paths[edge.Callee] -> ... until a nil
// edge marks a target.
func (g *CallGraph) PathsTo(targets map[*types.Func]bool) map[*types.Func]*CallEdge {
	paths := map[*types.Func]*CallEdge{}
	// Seeding only writes the fixed nil marker per target.
	//lmovet:commutative
	for fn := range targets {
		if g.decls[fn] != nil {
			paths[fn] = nil
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.fns {
			if _, done := paths[fn]; done {
				continue
			}
			for i := range g.out[fn] {
				e := g.out[fn][i]
				if _, reaches := paths[e.Callee]; reaches {
					paths[fn] = &e
					changed = true
					break
				}
			}
		}
	}
	return paths
}

// Chain renders the witness path from fn toward a PathsTo target as
// the called function names, e.g. ["helper", "leaf"]. fn itself is
// not included; a target maps to an empty chain.
func (g *CallGraph) Chain(paths map[*types.Func]*CallEdge, fn *types.Func) []string {
	var names []string
	for e := paths[fn]; e != nil; e = paths[e.Callee] {
		names = append(names, e.Callee.Name())
		if len(names) > len(g.fns) { // cycle guard; cannot happen with well-formed paths
			break
		}
	}
	return names
}
