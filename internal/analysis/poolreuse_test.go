package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestPoolreuse(t *testing.T) {
	analysistest.Run(t, analysis.Poolreuse, "poolreuse_bad", "poolreuse_ok")
}
