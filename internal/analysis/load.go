package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/vtime"
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	cg *CallGraph // lazily built by Pass.CallGraph, shared by analyzers
}

// Module is the loaded module: every buildable package, type-checked
// against one shared FileSet.
type Module struct {
	Root string // module root directory (holds go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // dependency order (imports before importers)

	byPath map[string]*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// FindModuleRoot walks up from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// stdImporter type-checks standard-library dependencies from GOROOT
// source. It is the piece that keeps the loader dependency-free: no
// export data, no go/packages, just the toolchain's own source tree.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// moduleImporter resolves module-internal imports from the packages
// already type-checked and everything else through the source importer.
type moduleImporter struct {
	std    types.Importer
	loaded map[string]*Package
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.loaded[path]; ok {
		return p.Types, nil
	}
	return im.std.Import(path)
}

// skipDir reports whether a directory should not be scanned for
// packages: VCS metadata, testdata fixtures, and underscore/dot dirs,
// mirroring the go tool's matching rules.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadModule parses and type-checks every non-test package under the
// module root. Test files are excluded: the determinism invariants
// govern production code, and tests legitimately measure wall time.
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   fset,
		byPath: map[string]*Package{},
	}

	// Pass 1: parse every package directory.
	type parsed struct {
		pkg     *Package
		imports []string
	}
	pending := map[string]*parsed{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, path)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{pkg: &Package{Path: imp, Dir: path, Files: files}}
		seen := map[string]bool{}
		for _, f := range files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if strings.HasPrefix(ip, modPath+"/") || ip == modPath {
					if !seen[ip] {
						seen[ip] = true
						p.imports = append(p.imports, ip)
					}
				}
			}
		}
		sort.Strings(p.imports)
		pending[imp] = p
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: type-check in dependency order.
	std := stdImporter(fset)
	im := &moduleImporter{std: std, loaded: map[string]*Package{}}
	var order []string
	for p := range pending {
		order = append(order, p)
	}
	sort.Strings(order) // stable tie-break under the topological visit

	visiting := map[string]bool{}
	var visit func(path string) error
	visit = func(path string) error {
		p, ok := pending[path]
		if !ok || im.loaded[path] != nil {
			return nil
		}
		if visiting[path] {
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		visiting[path] = true
		defer func() { visiting[path] = false }()
		for _, dep := range p.imports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		if err := check(fset, im, p.pkg); err != nil {
			return err
		}
		im.loaded[path] = p.pkg
		mod.byPath[path] = p.pkg
		mod.Pkgs = append(mod.Pkgs, p.pkg)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

// parseDir parses the non-test Go files of one directory, returning
// nil when the directory holds no buildable Go package.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one parsed package in place.
func check(fset *token.FileSet, im types.Importer, pkg *Package) error {
	conf := types.Config{Importer: im}
	info := newInfo()
	tp, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-check %s: %w", pkg.Path, err)
	}
	pkg.Types = tp
	pkg.Info = info
	return nil
}
