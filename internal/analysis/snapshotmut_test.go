package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSnapshotmut(t *testing.T) {
	analysistest.Run(t, analysis.Snapshotmut, "snapshotmut_bad", "snapshotmut_ok")
}
