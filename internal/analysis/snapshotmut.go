package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Snapshotmut enforces the copy-on-write snapshot invariant behind the
// registry's lock-free read path: a value published through
// atomic.Pointer.Store is immutable from the instant it is published.
// Readers load the snapshot with one atomic pointer read and walk it
// without synchronization, so any in-place write — to a map, slice or
// struct field reachable from the published value — is a data race
// that no mutex on the writer's side can fix. Writers must build a
// fresh value and publish it; they may never mutate one a reader
// might already hold.
//
// The analyzer flags, within each function:
//
//   - writes through a value obtained from atomic.Pointer.Load
//     (directly, e.g. p.Load().f = v, or through locals derived from
//     the loaded value — selector, index, and range derivations are
//     tracked);
//   - writes through a value after it was passed to
//     atomic.Pointer.Store (or referenced by the composite literal
//     that was stored), later in the same block — the
//     publish-then-keep-writing bug;
//   - passing a value to a same-package function that publishes its
//     parameter (summary-propagated over the call graph), followed by
//     a write, which is the same bug hidden behind a helper.
//
// A site the analyzer cannot see is proven safe the usual way:
// //lmovet:allow snapshotmut with a one-line justification.
var Snapshotmut = &Analyzer{
	Name: "snapshotmut",
	Doc:  "flag mutation of values published via atomic.Pointer (copy-on-write snapshots)",
	Run:  runSnapshotmut,
}

// isAtomicPointerMethod reports whether fn is the named method of
// sync/atomic's Pointer[T] (or Value, which has the same publication
// semantics).
func isAtomicPointerMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	n := named.Obj().Name()
	return n == "Pointer" || n == "Value"
}

// publishParams computes, over the call graph, which parameters of
// same-package functions flow into an atomic publication: directly as
// a Store argument, as an ident referenced by a stored composite
// literal, or onward into a publishing parameter of a callee.
func publishParams(pass *Pass, cg *CallGraph) map[*types.Func]map[int]bool {
	pub := map[*types.Func]map[int]bool{}
	paramIndex := func(fn *types.Func, obj types.Object) int {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == obj {
				return i
			}
		}
		return -1
	}
	mark := func(fn *types.Func, i int) bool {
		if pub[fn] == nil {
			pub[fn] = map[int]bool{}
		}
		if pub[fn][i] {
			return false
		}
		pub[fn][i] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.Functions() {
			fd := cg.Decl(fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range publishedArgs(pass, call, pub) {
					for _, id := range rootIdents(arg) {
						obj, ok := pass.TypesInfo.Uses[id]
						if !ok {
							continue
						}
						if i := paramIndex(fn, obj); i >= 0 && mark(fn, i) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	return pub
}

// publishedArgs returns the arguments of call that are published by
// it: the Store argument of an atomic Pointer/Value, or any argument
// passed at a parameter position a same-package callee publishes.
func publishedArgs(pass *Pass, call *ast.CallExpr, pub map[*types.Func]map[int]bool) []ast.Expr {
	var out []ast.Expr
	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil {
		return nil
	}
	if isAtomicPointerMethod(callee, "Store") && len(call.Args) == 1 {
		return call.Args[:1]
	}
	var idxs []int
	for i := range pub[callee] {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if i < len(call.Args) {
			out = append(out, call.Args[i])
		}
	}
	return out
}

// rootIdents collects the identifiers referenced by an expression that
// could alias the published value: the base of selector/index/star
// chains, the operand of &, and every ident inside a composite
// literal (storing &snapshot{entries: m} publishes m).
func rootIdents(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch v := e.(type) {
		case *ast.Ident:
			out = append(out, v)
		case *ast.ParenExpr:
			walk(v.X)
		case *ast.UnaryExpr:
			walk(v.X)
		case *ast.StarExpr:
			walk(v.X)
		case *ast.SelectorExpr:
			walk(v.X)
		case *ast.IndexExpr:
			walk(v.X)
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
				} else {
					walk(el)
				}
			}
		}
	}
	walk(e)
	return out
}

func runSnapshotmut(pass *Pass) error {
	cg := pass.CallGraph()
	pub := publishParams(pass, cg)
	for _, fn := range cg.Functions() {
		checkSnapshotFunc(pass, cg.Decl(fn), pub)
	}
	// Function literals outside declared functions (package-level vars)
	// still deserve the check; literals inside decls are covered above.
	return nil
}

// checkSnapshotFunc applies both directions of the invariant to one
// function body: taint from Load (mutation forbidden anywhere), and
// publication positions from Store (mutation forbidden afterwards).
func checkSnapshotFunc(pass *Pass, fd *ast.FuncDecl, pub map[*types.Func]map[int]bool) {
	info := pass.TypesInfo

	// Pass A: collect tainted objects (derived from .Load()) and
	// publication positions per object (from .Store(x) / publishing
	// callees).
	loaded := map[types.Object]token.Pos{}    // object -> taint origin
	published := map[types.Object]token.Pos{} // object -> earliest publication

	isLoadCall := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, _ := info.Uses[sel.Sel].(*types.Func)
		return isAtomicPointerMethod(fn, "Load")
	}
	// rootsFromLoad reports whether the expression derives from a Load
	// call or from an already-tainted ident.
	var derivesFromLoad func(e ast.Expr) bool
	derivesFromLoad = func(e ast.Expr) bool {
		switch v := e.(type) {
		case *ast.Ident:
			obj, ok := info.Uses[v]
			_, tainted := loaded[obj]
			return ok && tainted
		case *ast.CallExpr:
			return isLoadCall(v)
		case *ast.ParenExpr:
			return derivesFromLoad(v.X)
		case *ast.SelectorExpr:
			return derivesFromLoad(v.X)
		case *ast.IndexExpr:
			return derivesFromLoad(v.X)
		case *ast.StarExpr:
			return derivesFromLoad(v.X)
		case *ast.TypeAssertExpr:
			return derivesFromLoad(v.X)
		case *ast.UnaryExpr:
			return derivesFromLoad(v.X)
		}
		return false
	}

	// Taint propagation is a forward fixpoint over the body: an
	// assignment from a tainted expression taints its targets, and a
	// range over a tainted collection taints the iteration variables.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					if i >= len(v.Lhs) || !derivesFromLoad(rhs) {
						continue
					}
					if id, ok := v.Lhs[i].(*ast.Ident); ok {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil {
							if _, seen := loaded[obj]; !seen {
								loaded[obj] = rhs.Pos()
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				if !derivesFromLoad(v.X) {
					return true
				}
				for _, e := range []ast.Expr{v.Key, v.Value} {
					id, ok := e.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil {
						if _, seen := loaded[obj]; !seen {
							loaded[obj] = v.Pos()
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// Publication positions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range publishedArgs(pass, call, pub) {
			for _, id := range rootIdents(arg) {
				if obj, ok := info.Uses[id]; ok {
					if cur, seen := published[obj]; !seen || call.Pos() < cur {
						published[obj] = call.Pos()
					}
				}
			}
		}
		return true
	})

	if len(loaded) == 0 && len(published) == 0 {
		return
	}

	// Pass B: flag writes. A write is an assignment (or ++/--, or
	// delete) whose target chains down to a tainted or published base
	// ident; a bare `x = ...` rebind of the local itself is fine — the
	// invariant protects the pointed-to value, not the variable.
	flagWrite := func(target ast.Expr, pos token.Pos, forceDeref bool) {
		base, deref := writeBase(target)
		if base == nil {
			return
		}
		obj, ok := info.Uses[base]
		if !ok {
			return
		}
		if !deref && !forceDeref {
			return // rebinding the variable, not mutating the snapshot
		}
		if _, tainted := loaded[obj]; tainted {
			pass.Reportf(pos,
				"write through %s mutates a snapshot obtained from atomic.Pointer.Load; copy-on-write snapshots are immutable after publication — build a fresh value and Store it",
				base.Name)
			return
		}
		if pubPos, isPub := published[obj]; isPub && pos > pubPos {
			pass.Reportf(pos,
				"write through %s after it was published via atomic.Pointer.Store; a published snapshot may already be held by lock-free readers — mutate before publishing, or publish a fresh copy",
				base.Name)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				flagWrite(lhs, v.Pos(), false)
			}
		case *ast.IncDecStmt:
			flagWrite(v.X, v.Pos(), false)
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(v.Args) == 2 {
					// delete mutates the map the bare ident names.
					flagWrite(v.Args[0], v.Pos(), true)
				}
			}
		}
		return true
	})
}

// writeBase resolves a write target to its base identifier, reporting
// whether the write dereferences through the base (x.f = v, x[i] = v,
// *x = v) rather than rebinding the variable itself (x = v).
func writeBase(e ast.Expr) (base *ast.Ident, deref bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v, deref
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			e, deref = v.X, true
		case *ast.IndexExpr:
			e, deref = v.X, true
		case *ast.StarExpr:
			e, deref = v.X, true
		default:
			return nil, false
		}
	}
}
