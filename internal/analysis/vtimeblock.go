package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Vtimeblock flags real (host-level) blocking primitives inside code
// that runs in virtual-time process context. A vtime.Proc body that
// parks on a real sync.Mutex, waits on a sync.WaitGroup, sends or
// receives on an unbuffered channel, or calls time.Sleep blocks the
// one goroutine that carries the dispatcher role — the virtual clock
// stops and the simulation deadlocks (or, worse, times depend on the
// host scheduler).
//
// Context is seeded from spawn and scheduling call sites —
// Engine.Go(name, body), Engine.At(t, fn), Engine.After(d, fn) on a
// vtime engine — and propagated one level through same-package static
// calls from those bodies. The vtime kernel itself is excluded by the
// driver: its channel handoff is the mechanism the invariant protects.
var Vtimeblock = &Analyzer{
	Name: "vtimeblock",
	Doc:  "flag real blocking primitives reachable from vtime process context",
	Run:  runVtimeblock,
}

// vtimeSeedMethods are the vtime.Engine methods whose function argument
// executes inside the virtual-time universe.
var vtimeSeedMethods = map[string]int{ // method name -> func-arg index
	"Go":    1,
	"At":    1,
	"After": 1,
}

// blockingSyncMethods are methods of package sync that park the calling
// goroutine.
var blockingSyncMethods = map[string]map[string]bool{
	"Mutex":     {"Lock": true},
	"RWMutex":   {"Lock": true, "RLock": true},
	"WaitGroup": {"Wait": true},
	"Cond":      {"Wait": true},
	"Once":      {"Do": true},
}

func runVtimeblock(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	// Seed pass: bodies handed to Engine.Go / Engine.At / Engine.After.
	contexts := map[ast.Node]bool{}
	var addContext func(arg ast.Expr)
	addContext = func(arg ast.Expr) {
		switch a := arg.(type) {
		case *ast.FuncLit:
			contexts[a] = true
		case *ast.Ident:
			if fn, ok := pass.TypesInfo.Uses[a].(*types.Func); ok {
				if fd := decls[fn]; fd != nil && fd.Body != nil {
					contexts[fd] = true
				}
			}
		case *ast.SelectorExpr:
			addContext(a.Sel)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isVtimePkg(fn.Pkg().Path()) {
				return true
			}
			argIdx, ok := vtimeSeedMethods[fn.Name()]
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
				return true
			}
			addContext(call.Args[argIdx])
			return true
		})
	}

	// One level of intra-package propagation: functions statically
	// called from a seeded body also run in proc context. Set union;
	// visiting order cannot change the resulting context set.
	//lmovet:commutative
	for body := range copyNodeSet(contexts) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *types.Func
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
			}
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if fd := decls[callee]; fd != nil && fd.Body != nil {
				contexts[fd] = true
			}
			return true
		})
	}

	// Check bodies in source order so report order never depends on
	// map iteration (RunAnalyzer sorts too; this keeps the walk itself
	// deterministic).
	ordered := make([]ast.Node, 0, len(contexts))
	//lmovet:commutative
	for body := range contexts {
		ordered = append(ordered, body)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
	for _, body := range ordered {
		checkVtimeContext(pass, body)
	}
	return nil
}

func copyNodeSet(m map[ast.Node]bool) map[ast.Node]bool {
	out := make(map[ast.Node]bool, len(m))
	// Plain set copy, order-free.
	//lmovet:commutative
	for k := range m {
		out[k] = true
	}
	return out
}

// isVtimePkg matches the simulator kernel package both in the real
// module (repro/internal/vtime) and in test fixtures (vtime).
func isVtimePkg(path string) bool {
	return path == "vtime" || strings.HasSuffix(path, "/vtime")
}

// checkVtimeContext walks one proc-context body and reports real
// blocking constructs.
func checkVtimeContext(pass *Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "real channel send in vtime proc context blocks the virtual clock; use vtime.Cond/Resource")
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pass.Reportf(v.Pos(), "real channel receive in vtime proc context blocks the virtual clock; use vtime.Cond/Resource")
			}
		case *ast.SelectStmt:
			pass.Reportf(v.Pos(), "select over real channels in vtime proc context blocks the virtual clock")
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(v.Pos(), "range over a real channel in vtime proc context blocks the virtual clock")
				}
			}
		case *ast.CallExpr:
			checkVtimeCall(pass, v)
		}
		return true
	})
}

func checkVtimeCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg().Path() == "time" && sig != nil && sig.Recv() == nil && fn.Name() == "Sleep" {
		pass.Reportf(call.Pos(), "time.Sleep in vtime proc context stalls the host goroutine, not virtual time; use Proc.Sleep")
		return
	}
	if fn.Pkg().Path() != "sync" || sig == nil || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	if methods := blockingSyncMethods[named.Obj().Name()]; methods[fn.Name()] {
		pass.Reportf(call.Pos(),
			"sync.%s.%s in vtime proc context parks the dispatcher goroutine and deadlocks the virtual clock",
			named.Obj().Name(), fn.Name())
	}
}
