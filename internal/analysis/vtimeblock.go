package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Vtimeblock flags real (host-level) blocking primitives inside code
// that runs in virtual-time process context. A vtime.Proc body that
// parks on a real sync.Mutex, waits on a sync.WaitGroup, sends or
// receives on an unbuffered channel, or calls time.Sleep blocks the
// one goroutine that carries the dispatcher role — the virtual clock
// stops and the simulation deadlocks (or, worse, times depend on the
// host scheduler).
//
// Context is seeded from spawn and scheduling call sites —
// Engine.Go(name, body), Engine.At(t, fn), Engine.After(d, fn) on a
// vtime engine — and propagated transitively through the package call
// graph: every same-package function reachable from a seeded body
// runs in proc context, however deep the call chain. Diagnostics in
// transitively reached functions name the chain from the proc root.
// The vtime kernel itself is excluded by the driver: its channel
// handoff is the mechanism the invariant protects.
var Vtimeblock = &Analyzer{
	Name: "vtimeblock",
	Doc:  "flag real blocking primitives reachable from vtime process context",
	Run:  runVtimeblock,
}

// vtimeSeedMethods are the vtime.Engine methods whose function argument
// executes inside the virtual-time universe.
var vtimeSeedMethods = map[string]int{ // method name -> func-arg index
	"Go":    1,
	"At":    1,
	"After": 1,
}

// blockingSyncMethods are methods of package sync that park the calling
// goroutine.
var blockingSyncMethods = map[string]map[string]bool{
	"Mutex":     {"Lock": true},
	"RWMutex":   {"Lock": true, "RLock": true},
	"WaitGroup": {"Wait": true},
	"Cond":      {"Wait": true},
	"Once":      {"Do": true},
}

// procContext is one body known to execute in vtime proc context: a
// seeded function literal or declaration, or a declaration reached
// through the call graph. chain names the call path from the seed
// (empty for seeds themselves).
type procContext struct {
	body  ast.Node
	chain []string
}

func runVtimeblock(pass *Pass) error {
	cg := pass.CallGraph()

	// Seed pass: bodies handed to Engine.Go / Engine.At / Engine.After.
	var contexts []procContext
	inContext := map[ast.Node]bool{}
	reached := map[*types.Func]bool{}
	addSeedDecl := func(fn *types.Func) {
		if fd := cg.Decl(fn); fd != nil && !inContext[fd] {
			inContext[fd] = true
			reached[fn] = true
			contexts = append(contexts, procContext{body: fd})
		}
	}
	var addSeed func(arg ast.Expr)
	addSeed = func(arg ast.Expr) {
		switch a := arg.(type) {
		case *ast.FuncLit:
			if !inContext[a] {
				inContext[a] = true
				contexts = append(contexts, procContext{body: a})
			}
		case *ast.Ident:
			if fn, ok := pass.TypesInfo.Uses[a].(*types.Func); ok {
				addSeedDecl(fn)
			}
		case *ast.SelectorExpr:
			addSeed(a.Sel)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isVtimePkg(fn.Pkg().Path()) {
				return true
			}
			argIdx, ok := vtimeSeedMethods[fn.Name()]
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
				return true
			}
			addSeed(call.Args[argIdx])
			return true
		})
	}

	// Transitive propagation over the package call graph: everything a
	// seeded body calls, and everything those functions call, also runs
	// in proc context. Worklist BFS; the chain records the first (and
	// therefore shortest-by-discovery) witness path for diagnostics.
	var work []procContext
	work = append(work, contexts...)
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		var edges []CallEdge
		if fd, ok := cur.body.(*ast.FuncDecl); ok {
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				edges = cg.Callees(fn)
			}
		} else {
			edges = cg.CalleesIn(cur.body)
		}
		for _, e := range edges {
			if reached[e.Callee] {
				continue
			}
			fd := cg.Decl(e.Callee)
			if fd == nil {
				continue
			}
			reached[e.Callee] = true
			inContext[fd] = true
			next := procContext{
				body:  fd,
				chain: append(append([]string{}, cur.chain...), e.Callee.Name()),
			}
			contexts = append(contexts, next)
			work = append(work, next)
		}
	}

	// Check bodies in source order so report order never depends on
	// discovery order (RunAnalyzers sorts too; this keeps the walk
	// itself deterministic).
	sort.Slice(contexts, func(i, j int) bool { return contexts[i].body.Pos() < contexts[j].body.Pos() })
	for _, c := range contexts {
		checkVtimeContext(pass, c)
	}
	return nil
}

// isVtimePkg matches the simulator kernel package both in the real
// module (repro/internal/vtime) and in test fixtures (vtime).
func isVtimePkg(path string) bool {
	return path == "vtime" || strings.HasSuffix(path, "/vtime")
}

// via renders the call chain suffix of a diagnostic in a transitively
// reached function ("" for directly seeded bodies).
func (c procContext) via() string {
	if len(c.chain) == 0 {
		return ""
	}
	return " (reached from a vtime proc body via " + strings.Join(c.chain, " → ") + ")"
}

// checkVtimeContext walks one proc-context body and reports real
// blocking constructs. Nested function literals are included: they
// execute under the same process unless handed back to the engine,
// and the seed pass has already classified those.
func checkVtimeContext(pass *Pass, c procContext) {
	suffix := c.via()
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "real channel send in vtime proc context blocks the virtual clock; use vtime.Cond/Resource%s", suffix)
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pass.Reportf(v.Pos(), "real channel receive in vtime proc context blocks the virtual clock; use vtime.Cond/Resource%s", suffix)
			}
		case *ast.SelectStmt:
			pass.Reportf(v.Pos(), "select over real channels in vtime proc context blocks the virtual clock%s", suffix)
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(v.Pos(), "range over a real channel in vtime proc context blocks the virtual clock%s", suffix)
				}
			}
		case *ast.CallExpr:
			checkVtimeCall(pass, v, suffix)
		}
		return true
	})
}

func checkVtimeCall(pass *Pass, call *ast.CallExpr, suffix string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg().Path() == "time" && sig != nil && sig.Recv() == nil && fn.Name() == "Sleep" {
		pass.Reportf(call.Pos(), "time.Sleep in vtime proc context stalls the host goroutine, not virtual time; use Proc.Sleep%s", suffix)
		return
	}
	if fn.Pkg().Path() != "sync" || sig == nil || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	if methods := blockingSyncMethods[named.Obj().Name()]; methods[fn.Name()] {
		pass.Reportf(call.Pos(),
			"sync.%s.%s in vtime proc context parks the dispatcher goroutine and deadlocks the virtual clock%s",
			named.Obj().Name(), fn.Name(), suffix)
	}
}
