// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the
// repository's dependency-free analysis framework.
//
// Fixtures live under testdata/src/<pkg> relative to the calling
// test's directory. A fixture file marks expected diagnostics with
// trailing comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Each diagnostic reported on that line must match one unmatched
// regexp; unmatched expectations and unexpected diagnostics both fail
// the test. Fixture packages may import other fixture packages (also
// under testdata/src) and the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package from testdata/src and applies the
// analyzer, comparing diagnostics against // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx, func(t *testing.T) {
			t.Helper()
			runOne(t, a, fx)
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	runSuiteOne(t, []*analysis.Analyzer{a}, fixture)
}

// RunSuite loads each fixture package and applies the analyzers
// through analysis.RunAnalyzers — one shared directive index and call
// graph, the production execution path — comparing the combined,
// deduplicated findings against // want expectations. Use it for
// directiveaudit fixtures, whose results depend on the usage marks
// the other analyzers leave while running.
func RunSuite(t *testing.T, analyzers []*analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx, func(t *testing.T) {
			t.Helper()
			runSuiteOne(t, analyzers, fx)
		})
	}
}

func runSuiteOne(t *testing.T, analyzers []*analysis.Analyzer, fixture string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		fset:   fset,
		srcDir: filepath.Join("testdata", "src"),
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*analysis.Package{},
	}
	pkg, err := ld.load(fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	findings, err := analysis.RunAnalyzers(analyzers, fset, pkg)
	if err != nil {
		t.Fatalf("running suite on %s: %v", fixture, err)
	}
	diags := make([]analysis.Diagnostic, len(findings))
	for i, f := range findings {
		diags[i] = analysis.Diagnostic{Pos: f.Pos, Message: f.Message}
	}
	checkExpectations(t, fset, pkg.Files, diags)
}

// fixtureLoader type-checks fixture packages, resolving fixture-local
// imports recursively and everything else from GOROOT source.
type fixtureLoader struct {
	fset   *token.FileSet
	srcDir string
	std    types.Importer
	loaded map[string]*analysis.Package
}

func (ld *fixtureLoader) load(path string) (*analysis.Package, error) {
	if p, ok := ld.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: (*fixtureImporter)(ld)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tp, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	pkg := &analysis.Package{Path: path, Dir: dir, Files: files, Types: tp, Info: info}
	ld.loaded[path] = pkg
	return pkg, nil
}

type fixtureImporter fixtureLoader

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	ld := (*fixtureLoader)(im)
	if _, err := os.Stat(filepath.Join(ld.srcDir, filepath.FromSlash(path))); err == nil {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// expectation is one // want regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted extracts the consecutive quoted strings of a want
// comment, accepting both forms the upstream analysistest does:
// "a" "b" and `a` `b`.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			break
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			break
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
