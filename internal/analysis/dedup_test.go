package analysis

import (
	"go/token"
	"testing"
)

// TestRunAnalyzersDedupAndOrder pins the multichecker's output
// contract: findings come back sorted by (position, analyzer, message)
// regardless of analyzer registration order, and exact duplicates —
// the same analyzer reporting the same message at the same position
// twice — collapse to one finding. Distinct analyzers reporting at the
// same position both survive.
func TestRunAnalyzersDedupAndOrder(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("fake.go", -1, 1000)
	at := func(off int) token.Pos { return f.Pos(off) }

	zeta := &Analyzer{
		Name: "zeta",
		Run: func(p *Pass) error {
			p.Reportf(at(10), "shared position")
			p.Reportf(at(5), "early finding")
			p.Reportf(at(5), "early finding") // exact duplicate: dropped
			return nil
		},
	}
	alpha := &Analyzer{
		Name: "alpha",
		Run: func(p *Pass) error {
			p.Reportf(at(10), "shared position")
			return nil
		},
	}

	pkg := &Package{}
	findings, err := RunAnalyzers([]*Analyzer{zeta, alpha}, fset, pkg)
	if err != nil {
		t.Fatal(err)
	}

	want := []Finding{
		{Analyzer: "zeta", Pos: at(5), Message: "early finding"},
		{Analyzer: "alpha", Pos: at(10), Message: "shared position"},
		{Analyzer: "zeta", Pos: at(10), Message: "shared position"},
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d: %+v", len(findings), len(want), findings)
	}
	for i, w := range want {
		if findings[i] != w {
			t.Errorf("finding[%d] = %+v, want %+v", i, findings[i], w)
		}
	}
}
