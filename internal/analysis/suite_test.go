package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestSuiteCleanOnModule is the regression guard that keeps the tree
// lint-clean: it loads the real module and runs every analyzer with
// the production scoping policy, expecting zero findings. A
// time.Now() slipped into simnet, an unsorted map range in estimate,
// or an allocation on an annotated hot path fails this test (and the
// CI lint job) immediately.
func TestSuiteCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Pkgs) == 0 {
		t.Fatal("module loader found no packages")
	}
	sawDeterministic := false
	for _, pkg := range mod.Pkgs {
		if analysis.IsDeterministic(pkg.Path) {
			sawDeterministic = true
		}
		for _, a := range analysis.Scope(pkg.Path) {
			diags, err := analysis.RunAnalyzer(a, mod.Fset, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", mod.Fset.Position(d.Pos), a.Name, d.Message)
			}
		}
	}
	if !sawDeterministic {
		t.Error("no deterministic packages were analyzed; policy and loader disagree about import paths")
	}
}
