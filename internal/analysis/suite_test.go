package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestSuiteCleanOnModule is the regression guard that keeps the tree
// lint-clean: it loads the real module and runs every analyzer with
// the production scoping policy, expecting zero findings. A
// time.Now() slipped into simnet, an unsorted map range in estimate,
// or an allocation on an annotated hot path fails this test (and the
// CI lint job) immediately.
func TestSuiteCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Pkgs) == 0 {
		t.Fatal("module loader found no packages")
	}
	sawDeterministic := false
	for _, pkg := range mod.Pkgs {
		if analysis.IsDeterministic(pkg.Path) {
			sawDeterministic = true
		}
		// One RunAnalyzers call per package, exactly like cmd/lmovet:
		// the analyzers share a directive index, so directiveaudit (last
		// in Scope's list) sees which directives the others consulted.
		findings, err := analysis.RunAnalyzers(analysis.Scope(pkg.Path), mod.Fset, pkg)
		if err != nil {
			t.Fatalf("suite on %s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s: %s", mod.Fset.Position(f.Pos), f.Analyzer, f.Message)
		}
	}
	if !sawDeterministic {
		t.Error("no deterministic packages were analyzed; policy and loader disagree about import paths")
	}
}
