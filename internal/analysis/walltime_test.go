package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysis.Walltime, "walltime_bad", "walltime_ok")
}
