package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestServeWalltimeScope pins the robustness-layer policy: the serve
// package is in the walltime analyzer's scope, with wall-clock access
// confined to the approved server-lifecycle files.
func TestServeWalltimeScope(t *testing.T) {
	const serve = "repro/internal/serve"
	found := false
	for _, a := range analysis.Scope(serve) {
		if a == analysis.Walltime {
			found = true
		}
	}
	if !found {
		t.Fatal("walltime must cover repro/internal/serve")
	}
	for _, file := range []string{"server.go", "lifecycle.go", "metrics.go"} {
		if !analysis.WallClockFileAllowed(serve, file) {
			t.Errorf("%s must be wall-clock approved in serve", file)
		}
	}
	for _, file := range []string{"breaker.go", "admission.go", "registry.go", "jobs.go", "handlers.go"} {
		if analysis.WallClockFileAllowed(serve, file) {
			t.Errorf("%s must stay clock-free in serve", file)
		}
	}
	// Deterministic packages have no file exemptions.
	if analysis.WallClockFileAllowed("repro/internal/vtime", "engine.go") {
		t.Error("deterministic packages must not gain file exemptions")
	}
}
