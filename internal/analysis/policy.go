package analysis

import "strings"

// Suite is every lmovet analyzer, in report order. Directiveaudit is
// last by contract: it reads the usage marks the others leave on the
// shared directive index.
var Suite = []*Analyzer{Walltime, Globalrand, Maporder, Vtimeblock, Hotalloc, Snapshotmut, Atomicmix, Poolreuse, Directiveaudit}

// deterministicPkgs are the packages that make up the virtual-time
// universe: everything whose behavior must be a pure function of
// configuration and seed, because golden traces and parameter dumps
// are diffed byte-for-byte against them. Wall-clock access and
// order-sensitive map iteration are forbidden here.
var deterministicPkgs = map[string]bool{
	"repro/internal/vtime":      true,
	"repro/internal/simnet":     true,
	"repro/internal/mpi":        true,
	"repro/internal/mpib":       true,
	"repro/internal/collective": true,
	"repro/internal/estimate":   true,
	"repro/internal/faults":     true,
	"repro/internal/models":     true,
	"repro/internal/experiment": true,
	"repro/internal/autotune":   true,
	"repro/internal/tuned":      true,
	"repro/internal/obs":        true,
	"repro/internal/topo":       true,
}

// wallClockAllowed lists the packages that legitimately touch the host
// clock: the campaign scheduler times real work, simbench measures the
// simulator itself, and the cmd binaries talk to humans.
//
// The list is maintained for documentation and for Scope's benefit; a
// package is wall-clock-legitimate exactly when it is not
// deterministic and not file-scoped (see wallClockFileAllowed).
var wallClockAllowed = []string{
	"repro/internal/campaign",
	"repro/internal/simbench",
	"repro/cmd/",
}

// wallClockFileAllowed scopes wall-clock access inside otherwise
// clock-free packages to a named set of files. The serve package's
// robustness machinery (admission control, circuit breakers, the job
// store, retry backoff) is clock-free by construction — it reads
// monotonic time through injected funcs so the chaos suite can drive
// it deterministically — and only the server-lifecycle files may wire
// the real clock in.
var wallClockFileAllowed = map[string]map[string]bool{
	"repro/internal/serve": {
		"server.go":    true, // request latency timestamps
		"lifecycle.go": true, // drain grace, manifest timestamps, real clock/sleep wiring
		"metrics.go":   true, // uptime and latency exposition
	},
}

// WallClockFileAllowed reports whether the named file (base name) of
// the package at path may read the wall clock even though the package
// is otherwise in the walltime analyzer's scope.
func WallClockFileAllowed(path, file string) bool {
	return wallClockFileAllowed[path][file]
}

// WallClockFileScoped reports whether the package at path restricts
// wall-clock access to an approved file list.
func WallClockFileScoped(path string) bool {
	_, ok := wallClockFileAllowed[path]
	return ok
}

// IsDeterministic reports whether the package at the given import path
// belongs to the deterministic universe.
func IsDeterministic(path string) bool { return deterministicPkgs[path] }

// Scope returns the analyzers lmovet runs on the package with the
// given import path:
//
//   - walltime: deterministic packages, plus file-scoped packages
//     (repro/internal/serve: clock-free outside the approved
//     server-lifecycle files; see wallClockAllowed and
//     wallClockFileAllowed);
//   - globalrand, maporder: everywhere under internal/ — a seeded RNG
//     and stable iteration order are output-stability requirements for
//     the serving and reporting layers too;
//   - vtimeblock: everywhere except the vtime kernel itself, whose
//     channel handoff implements the primitive the check protects;
//   - hotalloc: everywhere (it only fires inside //lmovet:hotpath
//     functions);
//   - snapshotmut, atomicmix, poolreuse: everywhere — the concurrency
//     invariants they enforce (copy-on-write publication, unmixed
//     atomics, pooled-object lifecycle) are not package-specific;
//   - directiveaudit: everywhere, and always LAST, so the usage marks
//     left by the analyzers above are complete when it reads them.
func Scope(path string) []*Analyzer {
	var out []*Analyzer
	if IsDeterministic(path) || WallClockFileScoped(path) {
		out = append(out, Walltime)
	}
	if strings.HasPrefix(path, "repro/internal/") {
		out = append(out, Globalrand, Maporder)
	}
	if path != "repro/internal/vtime" {
		out = append(out, Vtimeblock)
	}
	out = append(out, Hotalloc, Snapshotmut, Atomicmix, Poolreuse, Directiveaudit)
	return out
}
