package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// wallClockFuncs are the package-level functions of package time that
// read or wait on the wall clock. time.Duration arithmetic and
// constants are fine — the simulator's virtual clock is a Duration —
// but touching the host's clock inside the deterministic universe
// destroys golden-trace reproducibility.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Walltime forbids wall-clock access (time.Now, time.Since, time.Sleep,
// time.After, timers, tickers) in deterministic packages and in the
// clock-free parts of file-scoped packages (WallClockFileAllowed names
// the files that may wire the real clock in). Which packages are in
// scope is decided by the driver (see policy.go); the analyzer flags
// every use outside an allowed file. Suppress a legitimate use with
// //lmovet:allow walltime.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock access inside the deterministic simulation universe",
	Run:  runWalltime,
}

func runWalltime(pass *Pass) error {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if WallClockFileAllowed(pass.Pkg.Path(), base) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on Duration/Time values are pure
			}
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; deterministic packages must use virtual time (vtime.Engine.Now)",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
