package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc flags allocation-introducing constructs inside functions
// annotated //lmovet:hotpath — the discrete-event fast path that the
// PR-3 optimization made allocation-free and that the simbench
// regression benchmarks guard. Directly inside a hot function it
// reports:
//
//   - calls into package fmt (formatting always allocates);
//   - function literals that capture enclosing variables (the capture
//     forces a heap-allocated closure);
//   - passing a non-pointer-shaped concrete value where the callee
//     takes an interface (the conversion boxes onto the heap);
//   - append to a slice declared locally without preallocated
//     capacity (growth reallocates on the hot path).
//
// Interprocedurally, it computes a per-function "allocates" summary
// over the package call graph — a function allocates when its body
// contains one of the constructs above or it calls (transitively,
// within the package) a function that does — and flags any call from
// a hot function to an allocating callee, naming the witness path and
// the root construct. Callees that are themselves //lmovet:hotpath
// are not re-flagged at the call site: their own check covers them.
//
// Allocations that are deliberate (error paths that fire once, cold
// branches) are waved through with //lmovet:allow hotalloc; a
// suppressed construct is excluded from its function's summary too.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-introducing constructs in (or reachable from) //lmovet:hotpath functions",
	Run:  runHotalloc,
}

// allocSite is one allocation-introducing construct, with a short
// description used when it is reported through a call chain.
type allocSite struct {
	pos  token.Pos
	desc string
}

func runHotalloc(pass *Pass) error {
	cg := pass.CallGraph()

	// Per-function direct summaries, //lmovet:allow hotalloc already
	// applied so a waved-through construct does not poison callers.
	direct := map[*types.Func][]allocSite{}
	hot := map[*types.Func]bool{}
	targets := map[*types.Func]bool{}
	for _, fn := range cg.Functions() {
		fd := cg.Decl(fn)
		sites := directAllocSites(pass, fd)
		kept := sites[:0]
		for _, s := range sites {
			if !pass.allowedAt("hotalloc", s.pos) {
				kept = append(kept, s)
			}
		}
		if len(kept) > 0 {
			direct[fn] = kept
			targets[fn] = true
		}
		if pass.Hotpath(fd) {
			hot[fn] = true
		}
	}
	paths := cg.PathsTo(targets)

	for _, fn := range cg.Functions() {
		if !hot[fn] {
			continue
		}
		fd := cg.Decl(fn)
		// Direct constructs, reported with the original messages.
		reportDirectAllocs(pass, fd)
		// Calls into allocating same-package callees. A callee that is
		// itself hotpath-annotated gets its own direct report instead.
		for _, e := range cg.Callees(fn) {
			if hot[e.Callee] {
				continue
			}
			if _, reaches := paths[e.Callee]; !reaches {
				continue
			}
			root := e.Callee
			for paths[root] != nil {
				root = paths[root].Callee
			}
			site := direct[root][0]
			chain := append([]string{e.Callee.Name()}, cg.Chain(paths, e.Callee)...)
			where := pass.Fset.Position(site.pos)
			pass.Reportf(e.Pos,
				"call to %s allocates (%s at %s:%d); hot path %s must stay allocation-free",
				strings.Join(chain, " → "), site.desc, shortFile(where.Filename), where.Line, fd.Name.Name)
		}
	}
	return nil
}

// shortFile trims a file path to its last two segments, enough to
// identify the site in a diagnostic without dragging the module root
// through every message.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// reportDirectAllocs reports the allocation constructs written
// directly in a hot function's body, with messages naming the hot
// function (the pre-call-graph behavior, kept stable).
func reportDirectAllocs(pass *Pass, fd *ast.FuncDecl) {
	unprealloc := collectBareSlices(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if capturesVars(pass, fd, v) {
				pass.Reportf(v.Pos(), "closure captures enclosing variables and allocates; hot path %s must stay allocation-free", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, v, unprealloc)
		}
		return true
	})
}

// directAllocSites collects the allocation constructs written directly
// in fd's body as summary entries, without reporting them.
func directAllocSites(pass *Pass, fd *ast.FuncDecl) []allocSite {
	var sites []allocSite
	unprealloc := collectBareSlices(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if capturesVars(pass, fd, v) {
				sites = append(sites, allocSite{v.Pos(), "variable-capturing closure"})
			}
		case *ast.CallExpr:
			sites = appendCallAllocSites(pass, sites, v, unprealloc)
		}
		return true
	})
	return sites
}

// appendCallAllocSites classifies one call expression for the summary:
// fmt calls, growing appends and interface boxing, mirroring
// checkHotCall without reporting.
func appendCallAllocSites(pass *Pass, sites []allocSite, call *ast.CallExpr, unprealloc map[types.Object]bool) []allocSite {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			return append(sites, allocSite{call.Pos(), "fmt." + fn.Name() + " call"})
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				if dst, ok := call.Args[0].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[dst]; obj != nil && unprealloc[obj] {
						sites = append(sites, allocSite{call.Pos(), "append to un-preallocated slice " + dst.Name})
					}
				}
			}
			return sites
		}
	}
	forEachBoxedArg(pass, call, func(arg ast.Expr, at types.Type) {
		sites = append(sites, allocSite{arg.Pos(), "interface boxing of " + at.String()})
	})
	return sites
}

// collectBareSlices finds local slice variables declared with no
// preallocated capacity: `var s []T`, `s := []T{...}`, `s := []T(nil)`.
// make with an explicit length or capacity counts as preallocated.
func collectBareSlices(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeclStmt:
			gd, ok := v.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if v.Tok.String() != ":=" || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := v.Rhs[i].(type) {
				case *ast.CompositeLit:
					mark(id)
				case *ast.CallExpr:
					// []T(nil) conversion; make(...) is preallocated.
					if _, isConv := rhs.Fun.(*ast.ArrayType); isConv {
						mark(id)
					}
				}
			}
		}
		return true
	})
	return out
}

// capturesVars reports whether lit references a variable declared in
// the enclosing function outside the literal itself — the condition
// under which the compiler heap-allocates a closure.
func capturesVars(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, unprealloc map[types.Object]bool) {
	// Package fmt: formatting allocates its result and boxes every
	// argument.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates; hot path %s must stay allocation-free", fn.Name(), fd.Name.Name)
			return
		}
	}

	// Builtin append to a bare local slice.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				if dst, ok := call.Args[0].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[dst]; obj != nil && unprealloc[obj] {
						pass.Reportf(call.Pos(), "append to %s grows an un-preallocated slice; size it with make(..., n) up front", dst.Name)
					}
				}
			}
			return
		}
	}

	// Interface boxing at call boundaries.
	forEachBoxedArg(pass, call, func(arg ast.Expr, at types.Type) {
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it onto the heap; hot path %s must stay allocation-free", at, fd.Name.Name)
	})
}

// forEachBoxedArg invokes f for every argument of call whose
// conversion to an interface parameter heap-allocates.
func forEachBoxedArg(pass *Pass, call *ast.CallExpr, f func(arg ast.Expr, at types.Type)) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		if boxesOnHeap(at.Type) {
			f(arg, at.Type)
		}
	}
}

// boxesOnHeap reports whether converting a value of type t to an
// interface requires a heap allocation. Pointer-shaped values
// (pointers, channels, maps, funcs, unsafe pointers) and interfaces
// store directly in the interface data word.
func boxesOnHeap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.UntypedNil
	}
	return true
}
