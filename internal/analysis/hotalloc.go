package analysis

import (
	"go/ast"
	"go/types"
)

// Hotalloc flags allocation-introducing constructs inside functions
// annotated //lmovet:hotpath — the discrete-event fast path that the
// PR-3 optimization made allocation-free and that the simbench
// regression benchmarks guard. It reports:
//
//   - calls into package fmt (formatting always allocates);
//   - function literals that capture enclosing variables (the capture
//     forces a heap-allocated closure);
//   - passing a non-pointer-shaped concrete value where the callee
//     takes an interface (the conversion boxes onto the heap);
//   - append to a slice declared locally without preallocated
//     capacity (growth reallocates on the hot path).
//
// Allocations that are deliberate (error paths that fire once, cold
// branches) are waved through with //lmovet:allow hotalloc.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-introducing constructs in //lmovet:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Hotpath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	unprealloc := collectBareSlices(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if capturesVars(pass, fd, v) {
				pass.Reportf(v.Pos(), "closure captures enclosing variables and allocates; hot path %s must stay allocation-free", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, v, unprealloc)
		}
		return true
	})
}

// collectBareSlices finds local slice variables declared with no
// preallocated capacity: `var s []T`, `s := []T{...}`, `s := []T(nil)`.
// make with an explicit length or capacity counts as preallocated.
func collectBareSlices(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeclStmt:
			gd, ok := v.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if v.Tok.String() != ":=" || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := v.Rhs[i].(type) {
				case *ast.CompositeLit:
					mark(id)
				case *ast.CallExpr:
					// []T(nil) conversion; make(...) is preallocated.
					if _, isConv := rhs.Fun.(*ast.ArrayType); isConv {
						mark(id)
					}
				}
			}
		}
		return true
	})
	return out
}

// capturesVars reports whether lit references a variable declared in
// the enclosing function outside the literal itself — the condition
// under which the compiler heap-allocates a closure.
func capturesVars(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, unprealloc map[types.Object]bool) {
	// Package fmt: formatting allocates its result and boxes every
	// argument.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates; hot path %s must stay allocation-free", fn.Name(), fd.Name.Name)
			return
		}
	}

	// Builtin append to a bare local slice.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				if dst, ok := call.Args[0].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[dst]; obj != nil && unprealloc[obj] {
						pass.Reportf(call.Pos(), "append to %s grows an un-preallocated slice; size it with make(..., n) up front", dst.Name)
					}
				}
			}
			return
		}
	}

	// Interface boxing at call boundaries.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		if boxesOnHeap(at.Type) {
			pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it onto the heap; hot path %s must stay allocation-free", at.Type, fd.Name.Name)
		}
	}
}

// boxesOnHeap reports whether converting a value of type t to an
// interface requires a heap allocation. Pointer-shaped values
// (pointers, channels, maps, funcs, unsafe pointers) and interfaces
// store directly in the interface data word.
func boxesOnHeap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.UntypedNil
	}
	return true
}
