// Package mpib is the benchmarking library of the reproduction, the
// counterpart of MPIBlib [12]: it measures the execution time of
// communication operations with adaptive repetition until a Student-t
// confidence interval is tight enough (the paper uses confidence level
// 95% and relative error 2.5%), and offers the timing methods the
// paper discusses — measuring on one designated process (the sender /
// root side, "fast and quite accurate for collective operations on a
// small number of processors") or taking the maximum over all
// processes (the global makespan).
package mpib

import (
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Timing selects how one repetition's duration is derived.
type Timing int

const (
	// RootTiming uses the interval observed on the designated rank, the
	// paper's sender-side method used for estimation experiments.
	RootTiming Timing = iota
	// MaxTiming uses the maximum interval over all ranks — the global
	// makespan, appropriate for observing collective operations.
	MaxTiming
)

// String returns the timing-method name.
func (t Timing) String() string {
	if t == RootTiming {
		return "root"
	}
	return "max"
}

// Options control the adaptive repetition loop. The zero value is
// replaced by the paper's defaults; the robustness knobs (OutlierMAD,
// Retries) default to off, leaving the measurement trajectory
// identical to the plain adaptive loop.
type Options struct {
	Confidence float64 // confidence level; default 0.95
	RelErr     float64 // target relative error of the CI; default 0.025
	MinReps    int     // repetitions before the stopping rule applies; default 5
	MaxReps    int     // hard cap per attempt; default 100

	// OutlierMAD, when positive, drops samples farther than this many
	// scaled MADs from the median before the stopping rule and the
	// final summary — so a single RTO-length spike from a lossy link
	// cannot drag the mean or keep the CI from closing. 0 disables
	// rejection.
	OutlierMAD float64

	// Retries bounds re-measurement attempts after a non-converged
	// attempt (CI still too wide after MaxReps): the ranks back off in
	// virtual time and run up to MaxReps further repetitions, keeping
	// all samples. 0 disables retries.
	Retries int

	// Backoff is the virtual-time pause before the first retry,
	// doubling per attempt; default 1ms when Retries > 0.
	Backoff time.Duration
}

// withDefaults fills unset fields with the paper's values.
func (o Options) withDefaults() Options {
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.RelErr == 0 {
		o.RelErr = 0.025
	}
	if o.MinReps == 0 {
		o.MinReps = 5
	}
	if o.MaxReps == 0 {
		o.MaxReps = 100
	}
	if o.MaxReps < o.MinReps {
		o.MaxReps = o.MinReps
	}
	if o.Retries > 0 && o.Backoff <= 0 {
		o.Backoff = time.Millisecond
	}
	return o
}

// Measurement is the result of an adaptive measurement; all ranks
// receive identical values.
type Measurement struct {
	stats.Summary               // over the samples that survived rejection
	Samples       []float64     // all per-repetition durations in seconds (pre-rejection)
	Elapsed       time.Duration // virtual time the whole measurement consumed
	Converged     bool          // the CI met the RelErr target
	Reps          int           // repetitions actually run
	Retries       int           // re-measurement attempts used
	Rejected      int           // samples dropped by outlier rejection
}

// Seconds returns the mean duration in seconds (convenience alias).
func (m Measurement) Seconds() float64 { return m.Mean }

// Measure runs op repeatedly on all ranks until the confidence interval
// of its duration is within opts.RelErr, and returns the identical
// Measurement on every rank. op is invoked collectively: every rank
// must call Measure at the same point, and op must itself be a
// collective (or locally empty) action. The roles:
//
//   - every repetition starts from a HardSync so ranks are aligned;
//   - each rank times its local part of op;
//   - the per-repetition sample is either the designated rank's local
//     time (RootTiming) or the maximum over ranks (MaxTiming).
func Measure(r *mpi.Rank, designated int, timing Timing, opts Options, op func()) Measurement {
	opts = opts.withDefaults()
	n := r.Size()

	// Shared per-repetition duration slots; each rank keeps its own
	// samples slice because, after the sync, every rank derives an
	// identical sample value and hence an identical stopping decision.
	cell := r.SharedCell()
	if cell.V == nil {
		cell.V = make([]float64, n)
	}
	locals := cell.V.([]float64)

	var samples []float64
	r.HardSync()
	start := r.Now()
	// One measurement span on the designated rank's track: the
	// designated rank's collective spans (and, under those, the message
	// spans) nest inside it, so a flame view shows measurement →
	// collective → wire.
	var msp obs.SpanID
	tr := r.Observer()
	if tr != nil && r.Rank() == designated {
		msp = tr.Begin(obs.CatMeasure, "measure:"+timing.String(), designated, start)
	}
	summarize := func() (stats.Summary, int) {
		return stats.RobustSummarize(samples, opts.Confidence, opts.OutlierMAD)
	}
	converged := false
	retries := 0
	backoff := opts.Backoff
	for attempt := 0; ; attempt++ {
		budget := len(samples) + opts.MaxReps
		for len(samples) < budget {
			r.HardSync()
			t0 := r.Now()
			op()
			locals[r.Rank()] = (r.Now() - t0).Seconds()
			r.HardSync() // every rank has written its local duration

			var sample float64
			switch timing {
			case RootTiming:
				sample = locals[designated]
			default:
				sample = stats.Max(locals)
			}
			samples = append(samples, sample)
			if len(samples) >= opts.MinReps {
				if s, _ := summarize(); s.N >= opts.MinReps && s.RelErr() <= opts.RelErr {
					converged = true
					break
				}
			}
		}
		if converged || attempt >= opts.Retries {
			break
		}
		// Non-converged attempt: back off (transient contention or a
		// degradation window may pass in virtual time) and re-measure.
		// Every rank derives the same decision from the same samples,
		// so the ranks stay in lockstep.
		retries++
		r.Sleep(backoff)
		backoff *= 2
	}

	if msp != 0 {
		tr.Annotate(msp, -1, -1, len(samples)) // bytes field reused as rep count
		tr.End(msp, r.Now())
	}
	summary, rejected := summarize()
	return Measurement{
		Summary:   summary,
		Samples:   samples,
		Elapsed:   r.Now() - start,
		Converged: converged,
		Reps:      len(samples),
		Retries:   retries,
		Rejected:  rejected,
	}
}

// MeasureOnce runs op a single repetition per rank and returns the
// duration according to the timing method, without the adaptive loop.
// Useful for one-shot observations where the caller handles statistics.
func MeasureOnce(r *mpi.Rank, designated int, timing Timing, op func()) float64 {
	n := r.Size()
	cell := r.SharedCell()
	if cell.V == nil {
		cell.V = make([]float64, n)
	}
	locals := cell.V.([]float64)
	r.HardSync()
	t0 := r.Now()
	op()
	locals[r.Rank()] = (r.Now() - t0).Seconds()
	r.HardSync()
	if timing == RootTiming {
		return locals[designated]
	}
	return stats.Max(locals)
}
