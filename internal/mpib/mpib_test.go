package mpib

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

func testConfig(n int) mpi.Config {
	return mpi.Config{
		Cluster: cluster.Homogeneous(n,
			cluster.NodeSpec{C: 50 * time.Microsecond, T: 5e-9},
			cluster.LinkSpec{L: 40 * time.Microsecond, Beta: 1e8}),
		Profile: cluster.Ideal(),
		Seed:    1,
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Confidence != 0.95 || o.RelErr != 0.025 || o.MinReps != 5 || o.MaxReps != 100 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{MinReps: 50, MaxReps: 10}.withDefaults()
	if o.MaxReps != 50 {
		t.Fatal("MaxReps should be raised to MinReps")
	}
}

func TestMeasureDeterministicOp(t *testing.T) {
	const n = 4
	var got Measurement
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		m := Measure(r, 0, MaxTiming, Options{}, func() {
			r.Scatter(mpi.Linear, 0, blocks(n, 1000))
		})
		if r.Rank() == 0 {
			got = m
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic operation converges at MinReps with zero stddev.
	if got.N != 5 {
		t.Fatalf("reps = %d, want 5 (deterministic op)", got.N)
	}
	if got.StdDev != 0 {
		t.Fatalf("stddev = %v, want 0", got.StdDev)
	}
	if got.Mean <= 0 {
		t.Fatal("mean must be positive")
	}
	if got.Elapsed <= 0 {
		t.Fatal("elapsed must be positive")
	}
}

func TestMeasureAllRanksAgree(t *testing.T) {
	const n = 6
	means := make([]float64, n)
	reps := make([]int, n)
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		m := Measure(r, 0, MaxTiming, Options{}, func() {
			r.Scatter(mpi.Binomial, 0, blocks(n, 500))
		})
		means[r.Rank()] = m.Mean
		reps[r.Rank()] = m.N
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if means[i] != means[0] || reps[i] != reps[0] {
			t.Fatalf("rank %d disagrees: mean %v vs %v, reps %d vs %d", i, means[i], means[0], reps[i], reps[0])
		}
	}
}

func TestRootVsMaxTiming(t *testing.T) {
	// For linear scatter the root finishes before the leaves, so
	// RootTiming < MaxTiming.
	const n = 8
	var root, max float64
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		mRoot := Measure(r, 0, RootTiming, Options{}, func() {
			r.Scatter(mpi.Linear, 0, blocks(n, 20000))
		})
		mMax := Measure(r, 0, MaxTiming, Options{}, func() {
			r.Scatter(mpi.Linear, 0, blocks(n, 20000))
		})
		if r.Rank() == 0 {
			root, max = mRoot.Mean, mMax.Mean
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(root > 0 && max > root) {
		t.Fatalf("root timing %v should be below max timing %v", root, max)
	}
}

func TestMeasureAdaptiveStopsOnNoise(t *testing.T) {
	// Escalating gather (LAM profile, medium messages) is noisy; the
	// loop must run beyond MinReps but respect MaxReps.
	cfg := testConfig(8)
	cfg.Profile = cluster.LAM()
	var m Measurement
	_, err := mpi.Run(cfg, func(r *mpi.Rank) {
		got := Measure(r, 0, MaxTiming, Options{MinReps: 12, MaxReps: 30}, func() {
			r.Gather(mpi.Linear, 0, make([]byte, 48<<10))
		})
		if r.Rank() == 0 {
			m = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.N <= 12 {
		t.Fatalf("reps = %d; noisy op should need more than MinReps", m.N)
	}
	if m.N > 30 {
		t.Fatalf("reps = %d exceeded MaxReps", m.N)
	}
	if m.StdDev == 0 {
		t.Fatal("noisy op should have nonzero stddev")
	}
}

func TestMeasureSequentialCallsIndependent(t *testing.T) {
	const n = 4
	var first, second Measurement
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		a := Measure(r, 0, MaxTiming, Options{}, func() {
			r.Scatter(mpi.Linear, 0, blocks(n, 1000))
		})
		b := Measure(r, 0, MaxTiming, Options{}, func() {
			r.Scatter(mpi.Linear, 0, blocks(n, 2000))
		})
		if r.Rank() == 0 {
			first, second = a, b
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Mean <= first.Mean {
		t.Fatalf("2000-byte scatter (%v) should exceed 1000-byte (%v)", second.Mean, first.Mean)
	}
}

func TestMeasureOnce(t *testing.T) {
	const n = 4
	vals := make([]float64, n)
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		vals[r.Rank()] = MeasureOnce(r, 0, MaxTiming, func() {
			r.Scatter(mpi.Linear, 0, blocks(n, 1000))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("ranks disagree: %v", vals)
		}
	}
	if vals[0] <= 0 {
		t.Fatal("duration must be positive")
	}
}

func TestLocalOpOnDesignatedRankOnly(t *testing.T) {
	// Measuring a root-local operation: only the designated rank works;
	// RootTiming sees it, and all ranks still agree.
	const n = 3
	var m Measurement
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		got := Measure(r, 1, RootTiming, Options{}, func() {
			if r.Rank() == 1 {
				r.Sleep(2 * time.Millisecond)
			}
		})
		if r.Rank() == 2 {
			m = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mean != 0.002 {
		t.Fatalf("mean = %v, want 2ms", m.Mean)
	}
}

func blocks(n, bs int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, bs)
	}
	return out
}
