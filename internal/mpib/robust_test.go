package mpib

import (
	"math"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/stats"
)

func TestZeroVarianceSeriesConvergesAndSummarizes(t *testing.T) {
	// A deterministic op yields identical samples: the CI is zero-width,
	// convergence happens at MinReps, and MAD-based rejection must keep
	// every sample (MAD == 0 must not reject the whole series).
	const n = 4
	var got Measurement
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		m := Measure(r, 0, MaxTiming, Options{OutlierMAD: 3}, func() {
			r.Bcast(0, make([]byte, 1000))
		})
		if r.Rank() == 0 {
			got = m
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged {
		t.Fatal("zero-variance series did not converge")
	}
	if got.Rejected != 0 {
		t.Fatalf("rejected %d samples of an identical series", got.Rejected)
	}
	if got.Reps != 5 || got.N != 5 {
		t.Fatalf("Reps = %d, N = %d, want 5/5", got.Reps, got.N)
	}
	if got.StdDev != 0 || got.CIHalf != 0 {
		t.Fatalf("zero-variance summary has spread: %+v", got.Summary)
	}
}

func TestMinRepsAboveMaxRepsClamps(t *testing.T) {
	const n = 2
	var got Measurement
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		// MinReps 8 > MaxReps 3: the cap is raised to MinReps, so the
		// stopping rule can actually apply.
		got = Measure(r, 0, MaxTiming, Options{MinReps: 8, MaxReps: 3}, func() {
			r.Bcast(0, make([]byte, 500))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Reps != 8 {
		t.Fatalf("Reps = %d, want 8 (MaxReps clamped up to MinReps)", got.Reps)
	}
	if !got.Converged {
		t.Fatal("deterministic op at 8 reps should converge")
	}
}

// noisyOp sleeps a deterministic, high-variance schedule so the CI
// cannot close within a few reps: sample k is (1 + 2*(k mod 2)) ms.
func noisyOp(r *mpi.Rank, k *int) func() {
	return func() {
		d := time.Duration(1+2*(*k%2)) * time.Millisecond
		*k++
		r.Sleep(d)
	}
}

func TestNonConvergedPathReportsHonestly(t *testing.T) {
	const n = 2
	var got Measurement
	_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
		k := 0
		got = Measure(r, 0, MaxTiming, Options{MaxReps: 6}, noisyOp(r, &k))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Converged {
		t.Fatalf("alternating 1ms/3ms samples converged at 2.5%% rel err: %+v", got.Summary)
	}
	if got.Reps != 6 {
		t.Fatalf("Reps = %d, want the full MaxReps 6", got.Reps)
	}
	if got.Retries != 0 {
		t.Fatalf("Retries = %d with retries disabled", got.Retries)
	}
	if got.RelErr() <= 0.025 {
		t.Fatalf("non-converged measurement reports rel err %v <= target", got.RelErr())
	}
}

func TestRetryWithBackoffAddsAttempts(t *testing.T) {
	const n = 2
	var withRetry, without Measurement
	run := func(opts Options) Measurement {
		var got Measurement
		_, err := mpi.Run(testConfig(n), func(r *mpi.Rank) {
			k := 0
			got = Measure(r, 0, MaxTiming, opts, noisyOp(r, &k))
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	without = run(Options{MaxReps: 6})
	withRetry = run(Options{MaxReps: 6, Retries: 2})
	if withRetry.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (noise never converges)", withRetry.Retries)
	}
	if withRetry.Reps != 3*6 {
		t.Fatalf("Reps = %d, want 18 (three attempts of 6)", withRetry.Reps)
	}
	if withRetry.Elapsed <= without.Elapsed {
		t.Fatal("retries with backoff should consume more virtual time")
	}
	// Backoff pauses are part of the trajectory: 1ms + 2ms on top of
	// the extra repetitions.
	if withRetry.Elapsed-without.Elapsed < 3*time.Millisecond {
		t.Fatalf("backoff pauses missing from elapsed time: %v vs %v",
			withRetry.Elapsed, without.Elapsed)
	}
}

func TestOutlierRejectionAbsorbsInjectedSpike(t *testing.T) {
	// One lossy link injects rare RTO-length spikes into an otherwise
	// deterministic broadcast. With MAD rejection the trimmed series
	// must converge to the fault-free mean; without it the spike drags
	// the mean far off.
	const n = 4
	cfg := testConfig(n)
	base := func() Measurement {
		var got Measurement
		_, err := mpi.Run(cfg, func(r *mpi.Rank) {
			got = Measure(r, 0, MaxTiming, Options{}, func() {
				r.Bcast(0, make([]byte, 1000))
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}()

	faultyCfg := cfg
	faultyCfg.Faults = &faults.Plan{Loss: []faults.LinkLoss{
		{Src: 0, Dst: 1, Prob: 0.15, RTO: 10 * time.Millisecond, MaxRetr: 1},
	}}
	robust := func() Measurement {
		var got Measurement
		_, err := mpi.Run(faultyCfg, func(r *mpi.Rank) {
			// MinReps 30 forces enough repetitions for the 15% loss to
			// actually fire.
			got = Measure(r, 0, MaxTiming, Options{OutlierMAD: 3, MinReps: 30, MaxReps: 40}, func() {
				r.Bcast(0, make([]byte, 1000))
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}()

	if robust.Rejected == 0 {
		t.Fatalf("no spikes rejected at 8%% loss over %d reps", robust.Reps)
	}
	// The robust mean must sit within the CI target of the fault-free
	// mean; the 10ms spikes are ~50x the base time, so this fails
	// loudly if rejection is broken.
	if rel := math.Abs(robust.Mean-base.Mean) / base.Mean; rel > 0.025 {
		t.Fatalf("robust mean %v strays %.1f%% from fault-free %v",
			robust.Mean, 100*rel, base.Mean)
	}
	// Sanity: the raw series really does contain the spike.
	if stats.Max(robust.Samples) < 10*base.Mean {
		t.Fatalf("expected an RTO spike in the raw samples, max %v vs base %v",
			stats.Max(robust.Samples), base.Mean)
	}
}

func TestRobustStatsHelpers(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 100}
	kept, rejected := stats.RejectOutliers(xs, 3)
	if rejected != 1 || len(kept) != 4 {
		t.Fatalf("RejectOutliers = %v (%d rejected), want the spike gone", kept, rejected)
	}
	if m := stats.TrimmedMean([]float64{1, 2, 3, 4, 100}, 0.2); m != 3 {
		t.Fatalf("TrimmedMean = %v, want 3", m)
	}
	if m := stats.MAD([]float64{1, 2, 3, 4, 5}); m != 1 {
		t.Fatalf("MAD = %v, want 1", m)
	}
	if s, rej := stats.RobustSummarize(xs, 0.95, 0); rej != 0 || s.N != 5 {
		t.Fatalf("RobustSummarize with k=0 must not reject: %+v, %d", s, rej)
	}
}
