// Package faults is the deterministic fault-injection layer of the
// simulated cluster. It generalizes the TCP escalation machinery of
// internal/simnet — a planted RTO fault the paper's estimation
// procedure has to survive and characterize — into a full catalogue of
// the failures real clusters throw at measurement campaigns:
//
//   - per-link packet loss with RTO-style retransmission stalls
//     (exponential backoff, bounded retransmissions);
//   - transient link degradation: latency and bandwidth multipliers
//     active over a virtual-time window;
//   - straggler nodes whose CPU costs are inflated by a constant
//     factor;
//   - node crashes at a scheduled virtual time, after which the node
//     neither sends nor receives.
//
// A Plan is pure data; an Injector compiles it with a seeded RNG
// stream. All randomness is drawn from that stream in simulation-event
// order, and the simulation kernel is single-threaded and
// deterministic, so the same seed yields the same faults, the same
// timings and the same results — the property every reproduction
// experiment and regression test in this repository relies on.
package faults

import (
	"fmt"
	"math/rand"
	"time"
)

// Any matches every node index in a link selector.
const Any = -1

// LinkLoss injects packet loss on the directed link Src→Dst: each wire
// transfer independently loses its first packet with probability Prob
// and pays an RTO retransmission stall, repeating (with exponentially
// growing timeouts) until a retransmission succeeds or MaxRetrans is
// reached. This is exactly the mechanism behind the paper's gather
// escalations, made available on any link at any size.
type LinkLoss struct {
	Src, Dst int           // node indices; Any matches all
	Prob     float64       // per-transfer loss probability in [0,1)
	RTO      time.Duration // first retransmission timeout; 0 = injector default
	Backoff  float64       // RTO growth per successive loss; <=0 means 2
	MaxRetr  int           // retransmission cap per transfer; <=0 means 8
}

// LinkDegrade multiplies the latency and divides the bandwidth of the
// directed link Src→Dst during [From, Until) of virtual time. An Until
// not after From means the window never closes.
type LinkDegrade struct {
	Src, Dst int           // node indices; Any matches all
	From     time.Duration // window start (virtual time)
	Until    time.Duration // window end; <= From means open-ended
	LatencyX float64       // multiplier on L_ij; <=0 means 1 (no change)
	RateX    float64       // multiplier on β_ij; <=0 means 1 (no change)
}

// Straggler inflates one node's CPU costs (both the fixed C and the
// per-byte t contributions) by CPUX for the whole run.
type Straggler struct {
	Node int
	CPUX float64 // multiplier; <=0 means 1
}

// Crash stops a node at virtual time At: its process terminates the
// next time it touches the network, messages addressed to it are
// black-holed, and peers blocked on it surface a typed error.
type Crash struct {
	Node int
	At   time.Duration
}

// Plan is a schedule of fault events for one simulation run.
// The zero value (or a nil *Plan) injects nothing.
type Plan struct {
	Loss       []LinkLoss
	Degrade    []LinkDegrade
	Stragglers []Straggler
	Crashes    []Crash
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		len(p.Loss) == 0 && len(p.Degrade) == 0 &&
			len(p.Stragglers) == 0 && len(p.Crashes) == 0
}

// Validate checks the plan against a cluster of n nodes.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	node := func(kind string, idx int, wildcard bool) error {
		if idx >= n || idx < 0 && !(wildcard && idx == Any) {
			return fmt.Errorf("faults: %s refers to node %d of a %d-node cluster", kind, idx, n)
		}
		return nil
	}
	for _, l := range p.Loss {
		if err := node("loss", l.Src, true); err != nil {
			return err
		}
		if err := node("loss", l.Dst, true); err != nil {
			return err
		}
		if l.Prob < 0 || l.Prob >= 1 {
			return fmt.Errorf("faults: loss probability %v outside [0,1)", l.Prob)
		}
	}
	for _, d := range p.Degrade {
		if err := node("degradation", d.Src, true); err != nil {
			return err
		}
		if err := node("degradation", d.Dst, true); err != nil {
			return err
		}
		if d.LatencyX < 0 || d.RateX < 0 {
			return fmt.Errorf("faults: negative degradation factor on link %d->%d", d.Src, d.Dst)
		}
	}
	for _, s := range p.Stragglers {
		if err := node("straggler", s.Node, false); err != nil {
			return err
		}
	}
	for _, c := range p.Crashes {
		if err := node("crash", c.Node, false); err != nil {
			return err
		}
		if c.At < 0 {
			return fmt.Errorf("faults: crash of node %d at negative time %v", c.Node, c.At)
		}
	}
	return nil
}

// Demo builds the reference fault plan of the robustness experiment
// ("-exp faults"): one lossy link (1% loss, RTO retransmission), one
// persistently degraded link (4× latency, half bandwidth) and one 2×
// straggler node, scaled down for clusters smaller than the paper's 16
// nodes. No crashes — estimation must complete.
func Demo(n int) *Plan {
	pick := func(i int) int { return i % n }
	p := &Plan{
		Loss:       []LinkLoss{{Src: pick(5), Dst: pick(0), Prob: 0.01, RTO: 40 * time.Millisecond}},
		Stragglers: []Straggler{{Node: pick(11), CPUX: 2}},
	}
	if a, b := pick(3), pick(7); a != b {
		p.Degrade = []LinkDegrade{
			{Src: a, Dst: b, LatencyX: 4, RateX: 0.5},
			{Src: b, Dst: a, LatencyX: 4, RateX: 0.5},
		}
	}
	return p
}

// Stats counts what an injector actually did; deterministic per seed.
type Stats struct {
	Lost    int           // packets lost (each triggering a retransmission stall)
	Stalled time.Duration // total retransmission stall time added
	Crashes int           // crash events fired
}

// Injector is a compiled Plan bound to a seeded RNG stream. The zero
// value and the nil pointer are inert: every method returns its
// neutral answer, so callers need no nil checks.
type Injector struct {
	plan       Plan
	rng        *rand.Rand
	defaultRTO time.Duration
	cpux       map[int]float64
	crash      map[int]time.Duration
	stats      Stats
}

// NewInjector compiles the plan with its own RNG stream derived from
// seed. defaultRTO backs LinkLoss entries with RTO zero (the simulator
// passes the TCP profile's base RTO so loss stalls match the observed
// escalation magnitudes).
func NewInjector(p *Plan, seed int64, defaultRTO time.Duration) *Injector {
	if p == nil {
		p = &Plan{}
	}
	if defaultRTO <= 0 {
		defaultRTO = 200 * time.Millisecond
	}
	in := &Injector{
		plan: *p,
		// A fixed multiplier decouples the fault stream from the TCP
		// escalation stream seeded with the raw seed: adding a fault plan
		// must not reshuffle the escalations of the underlying run.
		rng:        rand.New(rand.NewSource(seed*0x9E3779B9 + 0x6A09E667)),
		defaultRTO: defaultRTO,
		cpux:       map[int]float64{},
		crash:      map[int]time.Duration{},
	}
	for _, s := range p.Stragglers {
		if s.CPUX > 0 {
			in.cpux[s.Node] = s.CPUX
		}
	}
	for _, c := range p.Crashes {
		if t, ok := in.crash[c.Node]; !ok || c.At < t {
			in.crash[c.Node] = c.At
		}
	}
	return in
}

// matches reports whether a (src, dst) selector covers the link.
func matches(selSrc, selDst, src, dst int) bool {
	return (selSrc == Any || selSrc == src) && (selDst == Any || selDst == dst)
}

// TransferStall draws the retransmission stall for one wire transfer
// on src→dst and returns the total stall plus the number of packets
// lost. It consumes RNG values only for matching loss entries, in plan
// order, keeping the stream deterministic.
func (in *Injector) TransferStall(src, dst int) (time.Duration, int) {
	if in == nil || len(in.plan.Loss) == 0 {
		return 0, 0
	}
	var stall time.Duration
	lost := 0
	for _, l := range in.plan.Loss {
		if l.Prob <= 0 || !matches(l.Src, l.Dst, src, dst) {
			continue
		}
		rto := l.RTO
		if rto <= 0 {
			rto = in.defaultRTO
		}
		backoff := l.Backoff
		if backoff <= 0 {
			backoff = 2
		}
		maxRetr := l.MaxRetr
		if maxRetr <= 0 {
			maxRetr = 8
		}
		for k := 0; k < maxRetr && in.rng.Float64() < l.Prob; k++ {
			stall += rto
			rto = time.Duration(float64(rto) * backoff)
			lost++
		}
	}
	in.stats.Lost += lost
	in.stats.Stalled += stall
	return stall, lost
}

// LinkFactors returns the latency and rate multipliers active on link
// src→dst at virtual time at. Overlapping windows compose by
// multiplication.
func (in *Injector) LinkFactors(src, dst int, at time.Duration) (latX, rateX float64) {
	latX, rateX = 1, 1
	if in == nil {
		return
	}
	for _, d := range in.plan.Degrade {
		if !matches(d.Src, d.Dst, src, dst) {
			continue
		}
		if at < d.From || (d.Until > d.From && at >= d.Until) {
			continue
		}
		if d.LatencyX > 0 {
			latX *= d.LatencyX
		}
		if d.RateX > 0 {
			rateX *= d.RateX
		}
	}
	return
}

// CPUFactor returns the CPU cost multiplier of the node (1 when it is
// not a straggler).
func (in *Injector) CPUFactor(node int) float64 {
	if in == nil {
		return 1
	}
	if x, ok := in.cpux[node]; ok {
		return x
	}
	return 1
}

// CrashTime returns the node's scheduled crash time, if any.
func (in *Injector) CrashTime(node int) (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	t, ok := in.crash[node]
	return t, ok
}

// Crashing lists the nodes with a scheduled crash, in index order
// (deterministic; map iteration order must not leak into the event
// schedule).
func (in *Injector) Crashing() []int {
	if in == nil || len(in.crash) == 0 {
		return nil
	}
	max := 0
	// Max reduction over the keys is commutative; the ordered output
	// is produced by the index sweep below.
	//lmovet:commutative
	for n := range in.crash {
		if n > max {
			max = n
		}
	}
	var out []int
	for n := 0; n <= max; n++ {
		if _, ok := in.crash[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// NoteCrash records a fired crash event in the stats.
func (in *Injector) NoteCrash() {
	if in != nil {
		in.stats.Crashes++
	}
}

// Stats returns a snapshot of what the injector has done so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}
