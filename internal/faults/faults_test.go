package faults

import (
	"testing"
	"time"
)

func TestEmptyAndNilPlans(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan must be empty")
	}
	if !(&Plan{}).Empty() {
		t.Fatal("zero plan must be empty")
	}
	if (&Plan{Stragglers: []Straggler{{Node: 0, CPUX: 2}}}).Empty() {
		t.Fatal("plan with a straggler is not empty")
	}
	if err := nilPlan.Validate(4); err != nil {
		t.Fatalf("nil plan must validate: %v", err)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []*Plan{
		{Loss: []LinkLoss{{Src: 9, Dst: 0, Prob: 0.1}}},
		{Loss: []LinkLoss{{Src: 0, Dst: 1, Prob: 1.5}}},
		{Loss: []LinkLoss{{Src: -2, Dst: 1, Prob: 0.1}}},
		{Degrade: []LinkDegrade{{Src: 0, Dst: 4, LatencyX: 2}}},
		{Degrade: []LinkDegrade{{Src: 0, Dst: 1, LatencyX: -1}}},
		{Stragglers: []Straggler{{Node: Any, CPUX: 2}}},
		{Crashes: []Crash{{Node: 4, At: time.Second}}},
		{Crashes: []Crash{{Node: 0, At: -time.Second}}},
	}
	for i, p := range cases {
		if err := p.Validate(4); err == nil {
			t.Errorf("case %d: plan %+v validated against 4 nodes", i, p)
		}
	}
	good := &Plan{
		Loss:       []LinkLoss{{Src: Any, Dst: 0, Prob: 0.05}},
		Degrade:    []LinkDegrade{{Src: 1, Dst: 2, LatencyX: 4, RateX: 0.5}},
		Stragglers: []Straggler{{Node: 3, CPUX: 2}},
		Crashes:    []Crash{{Node: 2, At: time.Second}},
	}
	if err := good.Validate(4); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if d, n := in.TransferStall(0, 1); d != 0 || n != 0 {
		t.Fatal("nil injector must not stall")
	}
	if lat, rate := in.LinkFactors(0, 1, 0); lat != 1 || rate != 1 {
		t.Fatal("nil injector must return unit factors")
	}
	if in.CPUFactor(0) != 1 {
		t.Fatal("nil injector must return unit CPU factor")
	}
	if _, ok := in.CrashTime(0); ok {
		t.Fatal("nil injector must not crash nodes")
	}
	if in.Crashing() != nil {
		t.Fatal("nil injector lists no crashing nodes")
	}
}

// Same plan + same seed must reproduce the identical stall sequence;
// a different seed must (for a long enough sequence) differ.
func TestTransferStallDeterminism(t *testing.T) {
	plan := &Plan{Loss: []LinkLoss{{Src: Any, Dst: 0, Prob: 0.3, RTO: 10 * time.Millisecond}}}
	draw := func(seed int64) []time.Duration {
		in := NewInjector(plan, seed, 0)
		var out []time.Duration
		for i := 0; i < 200; i++ {
			d, _ := in.TransferStall(1, 0)
			out = append(out, d)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical stall sequences")
	}
}

func TestTransferStallSelectorsAndBackoff(t *testing.T) {
	plan := &Plan{Loss: []LinkLoss{{Src: 2, Dst: 3, Prob: 0.9999, RTO: 10 * time.Millisecond, MaxRetr: 3}}}
	in := NewInjector(plan, 1, 0)
	if d, _ := in.TransferStall(0, 3); d != 0 {
		t.Fatal("non-matching source must not stall")
	}
	// With prob ~1 every transfer hits the full retransmission ladder:
	// 10 + 20 + 40 ms with the default 2x backoff.
	d, lost := in.TransferStall(2, 3)
	if want := 70 * time.Millisecond; d != want {
		t.Fatalf("stall = %v, want %v", d, want)
	}
	if lost != 3 {
		t.Fatalf("lost = %d, want 3 (MaxRetr cap)", lost)
	}
	st := in.Stats()
	if st.Lost != 3 || st.Stalled != 70*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLinkFactorsWindows(t *testing.T) {
	plan := &Plan{Degrade: []LinkDegrade{
		{Src: 0, Dst: 1, From: time.Second, Until: 2 * time.Second, LatencyX: 4, RateX: 0.5},
		{Src: Any, Dst: 1, From: 0, LatencyX: 2}, // open-ended, all sources
	}}
	in := NewInjector(plan, 1, 0)
	if lat, rate := in.LinkFactors(0, 1, 1500*time.Millisecond); lat != 8 || rate != 0.5 {
		t.Fatalf("inside both windows: lat %v rate %v, want 8 and 0.5", lat, rate)
	}
	if lat, rate := in.LinkFactors(0, 1, 3*time.Second); lat != 2 || rate != 1 {
		t.Fatalf("after the bounded window: lat %v rate %v, want 2 and 1", lat, rate)
	}
	if lat, _ := in.LinkFactors(5, 1, 0); lat != 2 {
		t.Fatalf("wildcard source window missed: lat %v", lat)
	}
	if lat, rate := in.LinkFactors(1, 0, 0); lat != 1 || rate != 1 {
		t.Fatalf("unmatched link degraded: lat %v rate %v", lat, rate)
	}
}

func TestCPUFactorAndCrashes(t *testing.T) {
	plan := &Plan{
		Stragglers: []Straggler{{Node: 2, CPUX: 2.5}},
		Crashes:    []Crash{{Node: 3, At: time.Second}, {Node: 1, At: 2 * time.Second}},
	}
	in := NewInjector(plan, 1, 0)
	if in.CPUFactor(2) != 2.5 || in.CPUFactor(0) != 1 {
		t.Fatal("CPU factors wrong")
	}
	if at, ok := in.CrashTime(3); !ok || at != time.Second {
		t.Fatal("crash time of node 3 wrong")
	}
	got := in.Crashing()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Crashing() = %v, want [1 3]", got)
	}
}

func TestDemoPlanScalesAndValidates(t *testing.T) {
	for _, n := range []int{3, 4, 8, 16} {
		p := Demo(n)
		if err := p.Validate(n); err != nil {
			t.Fatalf("Demo(%d) invalid: %v", n, err)
		}
		if len(p.Loss) == 0 || len(p.Stragglers) == 0 {
			t.Fatalf("Demo(%d) missing faults", n)
		}
		if len(p.Crashes) != 0 {
			t.Fatalf("Demo(%d) must not crash nodes", n)
		}
	}
}
