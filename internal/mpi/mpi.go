// Package mpi is an MPI-like SPMD message-passing layer over the
// simulated switched cluster. It plays the role LAM/MPICH play in the
// paper: ranks exchange tagged byte messages through point-to-point
// primitives, and the collective operations (scatter, gather,
// broadcast, reduce, barrier) are programmed on top of those
// primitives using flat and binomial communication trees — the very
// algorithms whose execution time the communication performance models
// predict.
package mpi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

// AnySource matches any sender in Recv.
const AnySource = simnet.AnySource

// AnyTag matches any tag in Recv.
const AnyTag = simnet.AnyTag

// Internal tag space for collectives: user tags must stay below this.
const collTagBase = 1 << 20

// MaxUserTag is the largest tag application code may use in Send/Recv.
const MaxUserTag = collTagBase - 1

// Config describes a simulated MPI job.
type Config struct {
	Cluster *cluster.Cluster    // the machine to run on
	Profile *cluster.TCPProfile // TCP irregularity profile (nil = ideal)
	Seed    int64               // randomness for the TCP layer
	Faults  *faults.Plan        // fault injection plan (nil = fault-free)
	Obs     *obs.Trace          // span/metric observer (nil = disabled)
}

// Result reports what a completed job did.
type Result struct {
	Duration time.Duration   // virtual time from start to last event
	Net      simnet.Counters // traffic statistics
	Faults   faults.Stats    // what the fault injector did (zero when fault-free)
}

// World is the shared state of one SPMD job.
type World struct {
	net  *simnet.Network
	eng  *vtime.Engine
	n    int
	sync *vtime.Barrier
	seq  []int // per-rank collective sequence numbers (must stay in lockstep)

	cells   map[int]*SharedCell // harness-level shared cells by call sequence
	cellSeq []int               // per-rank SharedCell call counters
	commSeq map[string][]int    // per-member-set, per-rank collective sequences for Comm

	obs *obs.Trace // span observer shared by all ranks (nil = disabled)
}

// Rank is the handle each SPMD process receives. All methods must be
// called from that process's goroutine.
type Rank struct {
	w    *World
	p    *vtime.Proc
	rank int
}

// Run executes body on every rank of the cluster and returns traffic
// statistics. body runs once per rank, concurrently in virtual time.
//
// Failures surface as typed errors rather than hangs or raw panics:
// invalid collective input as *InputError, operations on crashed nodes
// as *CrashError (match with errors.As). When a fault plan crashed
// nodes and the job then stalled — ranks blocked on a peer they cannot
// identify, such as a wildcard receive — the engine's deadlock report
// is wrapped into a *CrashError naming the crashed nodes.
func Run(cfg Config, body func(r *Rank)) (Result, error) {
	if cfg.Cluster == nil {
		return Result{}, fmt.Errorf("mpi: nil cluster")
	}
	eng := vtime.NewEngine()
	net, err := simnet.New(eng, cfg.Cluster, cfg.Profile, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	if err := net.SetFaults(cfg.Faults); err != nil {
		return Result{}, err
	}
	if cfg.Obs != nil {
		eng.SetObserver(cfg.Obs)
		net.SetObserver(cfg.Obs)
	}
	n := cfg.Cluster.N()
	w := &World{
		net: net, eng: eng, n: n, obs: cfg.Obs,
		sync:    vtime.NewBarrier(eng, n),
		seq:     make([]int, n),
		cells:   make(map[int]*SharedCell),
		cellSeq: make([]int, n),
	}
	for i := 0; i < n; i++ {
		i := i
		eng.Go(fmt.Sprintf("rank%d", i), func(p *vtime.Proc) {
			body(&Rank{w: w, p: p, rank: i})
		})
	}
	res := Result{Net: net.Counters()}
	if err := eng.Run(); err != nil {
		var dl *vtime.DeadlockError
		if crashed := net.CrashedNodes(); len(crashed) > 0 && errors.As(err, &dl) {
			err = &CrashError{Nodes: crashed, Waiter: -1, At: eng.Now(), Cause: err}
		}
		res.Duration = eng.Now()
		res.Net = net.Counters()
		res.Faults = net.FaultStats()
		return res, err
	}
	return Result{Duration: eng.Now(), Net: net.Counters(), Faults: net.FaultStats()}, nil
}

// Rank returns this process's rank.
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.w.n }

// Now returns the current virtual time.
func (r *Rank) Now() time.Duration { return r.p.Now() }

// Sleep models local computation for d of virtual time.
func (r *Rank) Sleep(d time.Duration) { r.p.Sleep(d) }

// Proc exposes the underlying simulation process (for benchmarking
// layers that need engine access).
func (r *Rank) Proc() *vtime.Proc { return r.p }

// Network exposes the underlying simulated network.
func (r *Rank) Network() *simnet.Network { return r.w.net }

// Observer returns the span trace installed for this job via
// Config.Obs, or nil when observation is disabled. Layers above the
// ranks (measurement harnesses) use it to contribute their own spans
// to the same per-universe trace.
func (r *Rank) Observer() *obs.Trace { return r.w.obs }

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Send transmits data to rank dst with a user tag (0..MaxUserTag). It
// returns when the local CPU is free again (eager semantics).
func (r *Rank) Send(dst, tag int, data []byte) {
	if tag < 0 || tag > MaxUserTag {
		badInput("send", "user tag %d out of range [0, %d]", tag, MaxUserTag)
	}
	r.send(dst, tag, data)
}

// Recv blocks until a message matching (src, tag) arrives and returns
// its payload. src may be AnySource, tag may be AnyTag.
func (r *Rank) Recv(src, tag int) ([]byte, Status) {
	msg := r.w.net.Recv(r.p, r.rank, src, tag)
	return msg.Payload, Status{Source: msg.Src, Tag: msg.Tag, Bytes: len(msg.Payload)}
}

// SendTimeout is the deadline-aware, error-returning Send: it reports
// a *CrashError when dst is known to have crashed and — for
// rendezvous-protocol sends — a *TimeoutError when delivery has not
// completed within timeout of virtual time (non-positive timeout
// means no deadline). Invalid input is reported as an *InputError
// instead of aborting the rank.
func (r *Rank) SendTimeout(dst, tag int, data []byte, timeout time.Duration) error {
	if tag < 0 || tag > MaxUserTag {
		return &InputError{Op: "send", Reason: fmt.Sprintf("user tag %d out of range [0, %d]", tag, MaxUserTag)}
	}
	var deadline time.Duration
	if timeout > 0 {
		deadline = r.p.Now() + timeout
	}
	return r.w.net.SendDeadline(r.p, r.rank, dst, tag, data, deadline)
}

// RecvTimeout is the deadline-aware, error-returning Recv: it reports
// a *CrashError when the awaited specific source has crashed with
// nothing left in flight, and a *TimeoutError when no match arrives
// within timeout of virtual time (non-positive timeout means no
// deadline).
func (r *Rank) RecvTimeout(src, tag int, timeout time.Duration) ([]byte, Status, error) {
	var deadline time.Duration
	if timeout > 0 {
		deadline = r.p.Now() + timeout
	}
	msg, err := r.w.net.RecvDeadline(r.p, r.rank, src, tag, deadline)
	if err != nil {
		return nil, Status{}, err
	}
	return msg.Payload, Status{Source: msg.Src, Tag: msg.Tag, Bytes: len(msg.Payload)}, nil
}

// send is the internal untagged-range-checked variant used by
// collectives too.
func (r *Rank) send(dst, tag int, data []byte) {
	r.w.net.Send(r.p, r.rank, dst, tag, data)
}

// HardSync aligns all ranks at the same virtual instant at zero cost.
// It is measurement-harness machinery (isolating benchmark
// repetitions), not a model of MPI_Barrier — use Barrier for a costed
// one.
func (r *Rank) HardSync() { r.w.sync.Wait(r.p) }

// collTag returns a fresh internal tag for the next collective call on
// this rank. SPMD lockstep keeps the per-rank sequence numbers aligned,
// so all ranks of one collective agree on the tag while distinct
// collective invocations never cross-match.
func (r *Rank) collTag(op int) int {
	seq := r.w.seq[r.rank]
	r.w.seq[r.rank]++
	return collTagBase + seq*16 + op
}

// Collective op codes folded into internal tags.
const (
	opScatter = iota
	opGather
	opBcast
	opReduce
	opBarrier
	opAllgather
	opAlltoall
)
