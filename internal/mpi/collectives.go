package mpi

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/obs"
)

// Alg selects a collective algorithm. It is an alias of
// collective.Alg — the type moved next to the tree constructors so the
// model layer can key predictions by algorithm without importing the
// simulator — and keeps its traditional constant names here.
type Alg = collective.Alg

// Collective algorithms implemented by this package.
const (
	Linear   = collective.AlgLinear   // flat tree: the root talks to everyone directly
	Binomial = collective.AlgBinomial // binomial tree, as in Fig 2
	Binary   = collective.AlgBinary   // balanced binary tree over contiguous ranges
	Chain    = collective.AlgChain    // chain (pipeline) tree
)

// Algorithms lists every collective algorithm.
func Algorithms() []Alg { return collective.Algorithms() }

func (r *Rank) tree(alg Alg, root int) *collective.Tree {
	return alg.Tree(r.w.n, root)
}

// beginColl opens a per-rank collective-phase span named "op:alg" on
// this rank's track; every message span the network emits for this
// rank while the collective runs nests underneath it. The name is only
// assembled when observation is on, so the disabled path stays free.
func (r *Rank) beginColl(op, alg string) obs.SpanID {
	if r.w.obs == nil {
		return 0
	}
	return r.w.obs.Begin(obs.CatCollective, op+":"+alg, r.rank, r.p.Now())
}

// endColl closes a span opened by beginColl at the rank's current
// virtual time; a zero id (observation disabled) is a no-op.
func (r *Rank) endColl(id obs.SpanID) {
	if id != 0 {
		r.w.obs.End(id, r.p.Now())
	}
}

// Scatter distributes blocks from root to every rank using the given
// algorithm and returns this rank's block. blocks is meaningful only at
// the root and must hold n equal-size blocks indexed by absolute rank.
// The root's own block is returned without network cost (the paper
// treats the root's local copy as negligible).
func (r *Rank) Scatter(alg Alg, root int, blocks [][]byte) []byte {
	defer r.endColl(r.beginColl("scatter", alg.String()))
	return r.scatterTree(r.tree(alg, root), blocks)
}

// ScatterTree distributes blocks over an explicit communication tree
// rooted at tree.Root — the algorithm-agnostic form behind Scatter,
// exported so tuners can run candidate tree shapes (k-ary degrees,
// optimized mappings) that no named algorithm produces. The tree must
// span exactly the job's ranks.
func (r *Rank) ScatterTree(tree *collective.Tree, blocks [][]byte) []byte {
	defer r.endColl(r.beginColl("scatter", "tree"))
	if tree.N != r.w.n {
		badInput("scatter", "tree spans %d ranks, job has %d", tree.N, r.w.n)
	}
	return r.scatterTree(tree, blocks)
}

func (r *Rank) scatterTree(tree *collective.Tree, blocks [][]byte) []byte {
	tag := r.collTag(opScatter)
	root := tree.Root
	n := r.w.n
	if n == 1 {
		return blocks[root]
	}

	if r.rank == root {
		bs := -1
		if len(blocks) != n {
			badInput("scatter", "root has %d blocks, want %d", len(blocks), n)
		}
		for _, b := range blocks {
			if bs == -1 {
				bs = len(b)
			} else if len(b) != bs {
				badInput("scatter", "blocks must have equal size (got %d and %d bytes)", bs, len(b))
			}
		}
		for _, c := range tree.Children[root] {
			r.send(c, tag, concatRel(blocks, tree, c))
		}
		return blocks[root]
	}

	payload, _ := r.Recv(tree.Parent[r.rank], tag)
	size := tree.SubtreeSize[r.rank]
	if size == 0 || len(payload)%size != 0 {
		panic(fmt.Sprintf("mpi: scatter batch of %d bytes not divisible by subtree size %d", len(payload), size))
	}
	bs := len(payload) / size
	lo, _ := tree.RelRange(r.rank)
	for _, c := range tree.Children[r.rank] {
		clo, chi := tree.RelRange(c)
		r.send(c, tag, payload[(clo-lo)*bs:(chi-lo)*bs])
	}
	return payload[:bs]
}

// concatRel concatenates the blocks covered by child c's subtree in
// relative-rank order.
func concatRel(blocks [][]byte, tree *collective.Tree, c int) []byte {
	lo, hi := tree.RelRange(c)
	var out []byte
	for rel := lo; rel < hi; rel++ {
		out = append(out, blocks[(rel+tree.Root)%tree.N]...)
	}
	return out
}

// Gather collects equal-size blocks from every rank at root using the
// given algorithm. At the root it returns n blocks indexed by absolute
// rank; elsewhere it returns nil.
func (r *Rank) Gather(alg Alg, root int, block []byte) [][]byte {
	defer r.endColl(r.beginColl("gather", alg.String()))
	return r.gatherTree(r.tree(alg, root), block)
}

// GatherTree collects equal-size blocks over an explicit communication
// tree rooted at tree.Root — the algorithm-agnostic form behind
// Gather, exported for the same tuner candidates as ScatterTree.
func (r *Rank) GatherTree(tree *collective.Tree, block []byte) [][]byte {
	defer r.endColl(r.beginColl("gather", "tree"))
	if tree.N != r.w.n {
		badInput("gather", "tree spans %d ranks, job has %d", tree.N, r.w.n)
	}
	return r.gatherTree(tree, block)
}

func (r *Rank) gatherTree(tree *collective.Tree, block []byte) [][]byte {
	tag := r.collTag(opGather)
	root := tree.Root
	n := r.w.n
	if n == 1 {
		return [][]byte{append([]byte(nil), block...)}
	}
	bs := len(block)

	// Assemble this subtree's batch in relative order, starting with
	// our own block, then fill in children subtree batches as they come.
	lo, hi := tree.RelRange(r.rank)
	batch := make([]byte, (hi-lo)*bs)
	copy(batch, block)
	for range tree.Children[r.rank] {
		payload, st := r.Recv(AnySource, tag)
		clo, chi := tree.RelRange(st.Source)
		if len(payload) != (chi-clo)*bs {
			panic(fmt.Sprintf("mpi: gather batch from %d has %d bytes, want %d", st.Source, len(payload), (chi-clo)*bs))
		}
		copy(batch[(clo-lo)*bs:(chi-lo)*bs], payload)
	}

	if r.rank == root {
		out := make([][]byte, n)
		for rel := 0; rel < n; rel++ {
			abs := (rel + root) % n
			out[abs] = batch[rel*bs : (rel+1)*bs : (rel+1)*bs]
		}
		return out
	}
	r.send(tree.Parent[r.rank], tag, batch)
	return nil
}

// Bcast sends data from root to every rank over a binomial tree and
// returns the data on every rank. data is meaningful only at the root.
func (r *Rank) Bcast(root int, data []byte) []byte {
	defer r.endColl(r.beginColl("bcast", "binomial"))
	tag := r.collTag(opBcast)
	tree := collective.Binomial(r.w.n, root)
	if r.w.n == 1 {
		return data
	}
	if r.rank != root {
		data, _ = r.Recv(tree.Parent[r.rank], tag)
	}
	for _, c := range tree.Children[r.rank] {
		r.send(c, tag, data)
	}
	return data
}

// Reduce combines every rank's block at the root over a binomial tree
// using op (which must be associative and commutative) and returns the
// combined block at the root, nil elsewhere.
func (r *Rank) Reduce(root int, block []byte, op func(a, b []byte) []byte) []byte {
	defer r.endColl(r.beginColl("reduce", "binomial"))
	tag := r.collTag(opReduce)
	tree := collective.Binomial(r.w.n, root)
	if r.w.n == 1 {
		return append([]byte(nil), block...)
	}
	acc := append([]byte(nil), block...)
	for range tree.Children[r.rank] {
		payload, _ := r.Recv(AnySource, tag)
		acc = op(acc, payload)
	}
	if r.rank == root {
		return acc
	}
	r.send(tree.Parent[r.rank], tag, acc)
	return nil
}

// Barrier synchronizes all ranks with the dissemination algorithm; it
// has real network cost, unlike HardSync.
func (r *Rank) Barrier() {
	defer r.endColl(r.beginColl("barrier", "dissemination"))
	tag := r.collTag(opBarrier)
	n := r.w.n
	if n == 1 {
		return
	}
	for k := 1; k < n; k <<= 1 {
		to := (r.rank + k) % n
		from := (r.rank - k + n) % n
		r.send(to, tag, nil)
		r.Recv(from, tag)
	}
}

// Allgather distributes every rank's block to every rank with the ring
// algorithm and returns n blocks indexed by absolute rank.
func (r *Rank) Allgather(block []byte) [][]byte {
	defer r.endColl(r.beginColl("allgather", "ring"))
	tag := r.collTag(opAllgather)
	n := r.w.n
	out := make([][]byte, n)
	out[r.rank] = append([]byte(nil), block...)
	if n == 1 {
		return out
	}
	right := (r.rank + 1) % n
	left := (r.rank - 1 + n) % n
	have := r.rank // index of the block we forward next
	for s := 0; s < n-1; s++ {
		r.send(right, tag, out[have])
		payload, _ := r.Recv(left, tag)
		have = (have - 1 + n) % n
		out[have] = payload
	}
	return out
}

// Alltoall exchanges personalized blocks between all ranks linearly:
// send[i] goes to rank i, and the result's entry j holds rank j's block
// for this rank. send[rank] is copied locally.
func (r *Rank) Alltoall(send [][]byte) [][]byte {
	defer r.endColl(r.beginColl("alltoall", "linear"))
	tag := r.collTag(opAlltoall)
	n := r.w.n
	if len(send) != n {
		badInput("alltoall", "needs %d blocks, got %d", n, len(send))
	}
	out := make([][]byte, n)
	out[r.rank] = append([]byte(nil), send[r.rank]...)
	for i := 1; i < n; i++ {
		dst := (r.rank + i) % n
		r.send(dst, tag, send[dst])
	}
	for i := 1; i < n; i++ {
		payload, st := r.Recv(AnySource, tag)
		out[st.Source] = payload
	}
	return out
}
