package mpi

import (
	"fmt"

	"repro/internal/simnet"
)

// CrashError is the typed error for operations that tripped over a
// crashed node (re-exported from simnet so mpi callers need not import
// the network layer).
type CrashError = simnet.CrashError

// TimeoutError is the typed error for deadline-aware operations that
// missed their deadline (re-exported from simnet).
type TimeoutError = simnet.TimeoutError

// InputError reports invalid user input to an MPI call: a bad block
// count, mismatched sizes, a tag out of range. Collective APIs cannot
// return errors without breaking their SPMD shape, so the offending
// rank panics with an *InputError; the simulation engine converts the
// panic into a job failure and Run returns the error (match with
// errors.As). Plain panics remain reserved for internal invariant
// violations — bugs in this package, not in user input.
type InputError struct {
	Op     string // the API call, e.g. "scatter"
	Reason string
}

// Error describes the rejected input.
func (e *InputError) Error() string { return fmt.Sprintf("mpi: %s: %s", e.Op, e.Reason) }

// badInput aborts the calling rank with an *InputError.
func badInput(op, format string, args ...any) {
	panic(&InputError{Op: op, Reason: fmt.Sprintf(format, args...)})
}
