package mpi

import (
	"bytes"
	"testing"
)

func TestCommOfValidation(t *testing.T) {
	_, err := Run(testConfig(4), func(r *Rank) {
		if _, err := r.CommOf(nil); err == nil {
			t.Error("empty comm should fail")
		}
		if _, err := r.CommOf([]int{0, 0, 1}); err == nil {
			t.Error("duplicate member should fail")
		}
		if _, err := r.CommOf([]int{0, 9}); err == nil {
			t.Error("out-of-range member should fail")
		}
		if r.Rank() == 3 {
			if _, err := r.CommOf([]int{0, 1}); err == nil {
				t.Error("non-member should fail")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommRanksAndTranslation(t *testing.T) {
	_, err := Run(testConfig(6), func(r *Rank) {
		members := []int{5, 2, 3}
		in := false
		for _, m := range members {
			if m == r.Rank() {
				in = true
			}
		}
		if !in {
			return
		}
		c, err := r.CommOf(members)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Size() != 3 {
			t.Errorf("size = %d", c.Size())
		}
		if c.World(0) != 5 || c.World(2) != 3 {
			t.Error("world translation broken")
		}
		// Comm rank 0 is world 5.
		if r.Rank() == 5 && c.Rank() != 0 {
			t.Errorf("world 5 comm rank = %d", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSendRecv(t *testing.T) {
	_, err := Run(testConfig(5), func(r *Rank) {
		members := []int{4, 1}
		if r.Rank() != 4 && r.Rank() != 1 {
			return
		}
		c, err := r.CommOf(members)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 { // world 4
			c.Send(1, 7, []byte("via comm"))
		} else {
			data, st := c.Recv(0, 7)
			if string(data) != "via comm" {
				t.Errorf("payload = %q", data)
			}
			if st.Source != 0 {
				t.Errorf("status source = %d, want comm rank 0", st.Source)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommCollectivesOnSubsets(t *testing.T) {
	// Two disjoint communicators run scatters side by side; the world
	// ranks outside both do nothing.
	const n = 8
	groupA := []int{0, 2, 4}
	groupB := []int{1, 3, 5, 7}
	_, err := Run(testConfig(n), func(r *Rank) {
		pick := func(members []int) []int {
			for _, m := range members {
				if m == r.Rank() {
					return members
				}
			}
			return nil
		}
		var members []int
		if g := pick(groupA); g != nil {
			members = g
		} else if g := pick(groupB); g != nil {
			members = g
		} else {
			return // world rank 6 sits out
		}
		c, err := r.CommOf(members)
		if err != nil {
			t.Error(err)
			return
		}
		blocks := make([][]byte, c.Size())
		for i := range blocks {
			blocks[i] = bytes.Repeat([]byte{byte(len(members)*16 + i)}, 32)
		}
		mine := c.Scatter(Binomial, 0, blocks)
		if !bytes.Equal(mine, blocks[c.Rank()]) {
			t.Errorf("world %d comm scatter corrupted", r.Rank())
		}
		out := c.Gather(Linear, 0, mine)
		if c.Rank() == 0 {
			for i := range out {
				if !bytes.Equal(out[i], blocks[i]) {
					t.Errorf("comm gather block %d corrupted", i)
				}
			}
		}
		got := c.Bcast(1, mine)
		_ = got
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommBcastPayload(t *testing.T) {
	const n = 6
	_, err := Run(testConfig(n), func(r *Rank) {
		members := []int{5, 0, 2, 3}
		in := false
		for _, m := range members {
			if m == r.Rank() {
				in = true
			}
		}
		if !in {
			return
		}
		c, err := r.CommOf(members)
		if err != nil {
			t.Error(err)
			return
		}
		var data []byte
		if c.Rank() == 2 { // world rank 2
			data = []byte("from comm rank 2")
		}
		got := c.Bcast(2, data)
		if string(got) != "from comm rank 2" {
			t.Errorf("world %d got %q", r.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSequencesIsolated(t *testing.T) {
	// Consecutive collectives on the same comm must not cross-match.
	const n = 4
	_, err := Run(testConfig(n), func(r *Rank) {
		c, err := r.CommOf([]int{0, 1, 2, 3})
		if err != nil {
			t.Error(err)
			return
		}
		a := c.Bcast(0, payloadIf(c.Rank() == 0, "first"))
		b := c.Bcast(0, payloadIf(c.Rank() == 0, "second"))
		if string(a) != "first" || string(b) != "second" {
			t.Errorf("cross-matched: %q %q", a, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func payloadIf(cond bool, s string) []byte {
	if cond {
		return []byte(s)
	}
	return nil
}
