package mpi

import (
	"bytes"
	"testing"
	"testing/quick"
)

// mkVBlocks builds n recognisable blocks with the given sizes.
func mkVBlocks(counts []int) [][]byte {
	out := make([][]byte, len(counts))
	for i, c := range counts {
		b := make([]byte, c)
		for j := range b {
			b[j] = byte(i*37 + j)
		}
		out[i] = b
	}
	return out
}

func TestScattervGathervRoundTrip(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, root := range []int{0, 3} {
			n := 6
			counts := []int{100, 0, 2500, 64, 1, 900}
			blocks := mkVBlocks(counts)
			var rootGot [][]byte
			_, err := Run(testConfig(n), func(r *Rank) {
				mine := r.Scatterv(alg, root, blocks, counts)
				if !bytes.Equal(mine, blocks[r.Rank()]) {
					t.Errorf("%v root=%d: rank %d got wrong block (%d bytes, want %d)",
						alg, root, r.Rank(), len(mine), counts[r.Rank()])
				}
				out := r.Gatherv(alg, root, mine, counts)
				if r.Rank() == root {
					rootGot = out
				} else if out != nil {
					t.Errorf("non-root got data")
				}
			})
			if err != nil {
				t.Fatalf("%v root=%d: %v", alg, root, err)
			}
			for i := range blocks {
				if !bytes.Equal(rootGot[i], blocks[i]) {
					t.Fatalf("%v root=%d: block %d corrupted", alg, root, i)
				}
			}
		}
	}
}

// Property: scatterv+gatherv with random sizes is the identity for
// every algorithm.
func TestScattervGathervProperty(t *testing.T) {
	f := func(n8, root8, alg8 uint8, sizes []uint16) bool {
		n := int(n8%10) + 1
		root := int(root8) % n
		algs := Algorithms()
		alg := algs[int(alg8)%len(algs)]
		counts := make([]int, n)
		for i := range counts {
			if i < len(sizes) {
				counts[i] = int(sizes[i] % 4096)
			} else {
				counts[i] = i * 7
			}
		}
		blocks := mkVBlocks(counts)
		ok := true
		_, err := Run(testConfig(n), func(r *Rank) {
			mine := r.Scatterv(alg, root, blocks, counts)
			if !bytes.Equal(mine, blocks[r.Rank()]) {
				ok = false
			}
			out := r.Gatherv(alg, root, mine, counts)
			if r.Rank() == root {
				for i := range out {
					if !bytes.Equal(out[i], blocks[i]) {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScattervValidation(t *testing.T) {
	// Mismatched counts length.
	_, err := Run(testConfig(3), func(r *Rank) {
		r.Scatterv(Linear, 0, mkVBlocks([]int{1, 2, 3}), []int{1, 2})
	})
	if err == nil {
		t.Fatal("short counts should fail")
	}
	// Block/count mismatch at the root.
	_, err = Run(testConfig(3), func(r *Rank) {
		blocks := mkVBlocks([]int{1, 2, 3})
		blocks[1] = blocks[1][:1]
		r.Scatterv(Linear, 0, blocks, []int{1, 2, 3})
	})
	if err == nil {
		t.Fatal("mismatched block size should fail")
	}
}

func TestGathervValidation(t *testing.T) {
	_, err := Run(testConfig(3), func(r *Rank) {
		r.Gatherv(Linear, 0, make([]byte, 5), []int{1, 1, 1})
	})
	if err == nil {
		t.Fatal("wrong own-block size should fail")
	}
}

// Proportional distribution: a faster processor receives a bigger
// share, and the variable scatter should complete no later than the
// equal-block scatter of the same total volume when the root is slow…
// here we only assert volume accounting via the network counters.
func TestScattervTrafficAccounting(t *testing.T) {
	n := 4
	counts := []int{0, 1000, 2000, 3000}
	res, err := Run(testConfig(n), func(r *Rank) {
		r.Scatterv(Linear, 0, mkVBlocks(counts), counts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Bytes != 6000 {
		t.Fatalf("bytes = %d, want 6000", res.Net.Bytes)
	}
	if res.Net.Messages != 3 {
		t.Fatalf("messages = %d, want 3", res.Net.Messages)
	}
}
