package mpi

import (
	"fmt"

	"repro/internal/collective"
)

// Scatterv distributes variable-size blocks from root: counts[i] is the
// byte count destined for rank i and must be identical on every rank
// (as in MPI_Scatterv); blocks is meaningful only at the root, where
// len(blocks[i]) must equal counts[i]. It returns this rank's block.
//
// Variable block sizes are the vehicle for heterogeneous data
// distribution: giving each processor work proportional to its speed,
// the optimization the paper's introduction motivates.
func (r *Rank) Scatterv(alg Alg, root int, blocks [][]byte, counts []int) []byte {
	tag := r.collTag(opScatter)
	tree := r.tree(alg, root)
	n := r.w.n
	if len(counts) != n {
		badInput("scatterv", "needs %d counts, got %d", n, len(counts))
	}
	if n == 1 {
		return blocks[root]
	}

	if r.rank == root {
		if len(blocks) != n {
			badInput("scatterv", "root has %d blocks, want %d", len(blocks), n)
		}
		for i, b := range blocks {
			if len(b) != counts[i] {
				badInput("scatterv", "block %d has %d bytes, counts say %d", i, len(b), counts[i])
			}
		}
		for _, c := range tree.Children[root] {
			r.send(c, tag, concatRelV(blocks, tree, c))
		}
		return blocks[root]
	}

	payload, _ := r.Recv(tree.Parent[r.rank], tag)
	lo, hi := tree.RelRange(r.rank)
	if want := sumCountsRel(counts, tree, lo, hi); len(payload) != want {
		panic(fmt.Sprintf("mpi: scatterv batch of %d bytes, want %d", len(payload), want))
	}
	// Own block is the first counts[rank] bytes; forward each child its
	// contiguous sub-batch.
	own := counts[r.rank]
	for _, c := range tree.Children[r.rank] {
		clo, chi := tree.RelRange(c)
		start := sumCountsRel(counts, tree, lo, clo)
		end := start + sumCountsRel(counts, tree, clo, chi)
		r.send(c, tag, payload[start:end])
	}
	return payload[:own]
}

// Gatherv collects variable-size blocks at root: every rank contributes
// its block (len(block) must equal counts[rank]); counts must be
// identical on every rank. At the root it returns n blocks indexed by
// absolute rank, nil elsewhere.
func (r *Rank) Gatherv(alg Alg, root int, block []byte, counts []int) [][]byte {
	tag := r.collTag(opGather)
	tree := r.tree(alg, root)
	n := r.w.n
	if len(counts) != n {
		badInput("gatherv", "needs %d counts, got %d", n, len(counts))
	}
	if len(block) != counts[r.rank] {
		badInput("gatherv", "rank %d block has %d bytes, counts say %d", r.rank, len(block), counts[r.rank])
	}
	if n == 1 {
		return [][]byte{append([]byte(nil), block...)}
	}

	lo, hi := tree.RelRange(r.rank)
	batch := make([]byte, sumCountsRel(counts, tree, lo, hi))
	copy(batch, block)
	for range tree.Children[r.rank] {
		payload, st := r.Recv(AnySource, tag)
		clo, chi := tree.RelRange(st.Source)
		start := sumCountsRel(counts, tree, lo, clo)
		end := start + sumCountsRel(counts, tree, clo, chi)
		if len(payload) != end-start {
			panic(fmt.Sprintf("mpi: gatherv batch from %d has %d bytes, want %d", st.Source, len(payload), end-start))
		}
		copy(batch[start:end], payload)
	}

	if r.rank == root {
		out := make([][]byte, n)
		at := 0
		for rel := 0; rel < n; rel++ {
			abs := (rel + root) % n
			out[abs] = batch[at : at+counts[abs] : at+counts[abs]]
			at += counts[abs]
		}
		return out
	}
	r.send(tree.Parent[r.rank], tag, batch)
	return nil
}

// concatRelV concatenates the variable-size blocks of child c's
// subtree in relative order.
func concatRelV(blocks [][]byte, tree *collective.Tree, c int) []byte {
	lo, hi := tree.RelRange(c)
	var out []byte
	for rel := lo; rel < hi; rel++ {
		out = append(out, blocks[(rel+tree.Root)%tree.N]...)
	}
	return out
}

// sumCountsRel sums counts over the relative-rank interval [lo, hi).
func sumCountsRel(counts []int, tree *collective.Tree, lo, hi int) int {
	s := 0
	for rel := lo; rel < hi; rel++ {
		s += counts[(rel+tree.Root)%tree.N]
	}
	return s
}
