package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
)

func testConfig(n int) Config {
	return Config{
		Cluster: cluster.Homogeneous(n,
			cluster.NodeSpec{C: 50 * time.Microsecond, T: 5e-9},
			cluster.LinkSpec{L: 40 * time.Microsecond, Beta: 1e8}),
		Profile: cluster.Ideal(),
		Seed:    1,
	}
}

// mkBlocks builds n distinct, recognisable blocks of size bs.
func mkBlocks(n, bs int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, bs)
		for j := range b {
			b[j] = byte(i*31 + j)
		}
		out[i] = b
	}
	return out
}

func TestSendRecvBasic(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 9, []byte("hello"))
		} else {
			data, st := r.Recv(0, 9)
			if string(data) != "hello" {
				t.Errorf("payload = %q", data)
			}
			if st.Source != 0 || st.Tag != 9 || st.Bytes != 5 {
				t.Errorf("status = %+v", st)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserTagRangeEnforced(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, MaxUserTag+1, nil)
		} else {
			r.Recv(AnySource, AnyTag)
		}
	})
	if err == nil {
		t.Fatal("tag beyond MaxUserTag should fail the job")
	}
}

func TestScatterGatherRoundTripAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
			for _, root := range []int{0, n - 1, n / 2} {
				name := fmt.Sprintf("%v/n=%d/root=%d", alg, n, root)
				blocks := mkBlocks(n, 64)
				gathered := make([][][]byte, n)
				_, err := Run(testConfig(n), func(r *Rank) {
					mine := r.Scatter(alg, root, blocks)
					if !bytes.Equal(mine, blocks[r.Rank()]) {
						t.Errorf("%s: rank %d got wrong block", name, r.Rank())
					}
					gathered[r.Rank()] = r.Gather(alg, root, mine)
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for rk, g := range gathered {
					if rk == root {
						if len(g) != n {
							t.Fatalf("%s: root gathered %d blocks", name, len(g))
						}
						for i := range g {
							if !bytes.Equal(g[i], blocks[i]) {
								t.Fatalf("%s: gathered block %d corrupted", name, i)
							}
						}
					} else if g != nil {
						t.Fatalf("%s: non-root %d returned blocks", name, rk)
					}
				}
			}
		}
	}
}

// Property: scatter+gather over random sizes, roots and algorithms is
// the identity.
func TestScatterGatherProperty(t *testing.T) {
	f := func(n8, root8, bs8 uint8, binomial bool) bool {
		n := int(n8%12) + 1
		root := int(root8) % n
		bs := int(bs8%128) + 1
		algs := Algorithms()
		alg := algs[int(bs8)%len(algs)]
		_ = binomial
		blocks := mkBlocks(n, bs)
		ok := true
		_, err := Run(testConfig(n), func(r *Rank) {
			mine := r.Scatter(alg, root, blocks)
			out := r.Gather(alg, root, mine)
			if r.Rank() == root {
				for i := range out {
					if !bytes.Equal(out[i], blocks[i]) {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		data := []byte("broadcast payload")
		_, err := Run(testConfig(n), func(r *Rank) {
			var in []byte
			if r.Rank() == 2%n {
				in = data
			}
			got := r.Bcast(2%n, in)
			if !bytes.Equal(got, data) {
				t.Errorf("n=%d rank %d: bcast got %q", n, r.Rank(), got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceSum(t *testing.T) {
	const n = 8
	sum := func(a, b []byte) []byte {
		out := make([]byte, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	}
	_, err := Run(testConfig(n), func(r *Rank) {
		block := []byte{byte(r.Rank()), 1}
		got := r.Reduce(0, block, sum)
		if r.Rank() == 0 {
			want := []byte{byte(0 + 1 + 2 + 3 + 4 + 5 + 6 + 7), n}
			if !bytes.Equal(got, want) {
				t.Errorf("reduce = %v, want %v", got, want)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		_, err := Run(testConfig(n), func(r *Rank) {
			out := r.Allgather([]byte{byte(r.Rank() * 3)})
			for i := range out {
				if len(out[i]) != 1 || out[i][0] != byte(i*3) {
					t.Errorf("n=%d rank %d: allgather[%d] = %v", n, r.Rank(), i, out[i])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	const n = 6
	_, err := Run(testConfig(n), func(r *Rank) {
		send := make([][]byte, n)
		for i := range send {
			send[i] = []byte{byte(r.Rank()), byte(i)}
		}
		out := r.Alltoall(send)
		for j := range out {
			want := []byte{byte(j), byte(r.Rank())}
			if !bytes.Equal(out[j], want) {
				t.Errorf("rank %d: from %d got %v, want %v", r.Rank(), j, out[j], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierHasNetworkCost(t *testing.T) {
	const n = 8
	after := make([]time.Duration, n)
	_, err := Run(testConfig(n), func(r *Rank) {
		r.Barrier()
		after[r.Rank()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range after {
		if at == 0 {
			t.Fatalf("rank %d passed barrier at t=0; dissemination must cost time", i)
		}
	}
}

func TestHardSyncAligns(t *testing.T) {
	const n = 4
	times := make([]time.Duration, n)
	_, err := Run(testConfig(n), func(r *Rank) {
		r.Sleep(time.Duration(r.Rank()) * time.Millisecond)
		r.HardSync()
		times[r.Rank()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if times[i] != times[0] {
			t.Fatalf("hard sync misaligned: %v", times)
		}
	}
	if times[0] != 3*time.Millisecond {
		t.Fatalf("sync at %v, want 3ms", times[0])
	}
}

// Consecutive collectives must not cross-match even when ranks drift.
func TestBackToBackCollectivesIsolated(t *testing.T) {
	const n = 8
	blocksA := mkBlocks(n, 32)
	blocksB := mkBlocks(n, 32)
	for i := range blocksB {
		for j := range blocksB[i] {
			blocksB[i][j] ^= 0xFF
		}
	}
	_, err := Run(testConfig(n), func(r *Rank) {
		a := r.Scatter(Binomial, 0, blocksA)
		b := r.Scatter(Binomial, 0, blocksB)
		if !bytes.Equal(a, blocksA[r.Rank()]) || !bytes.Equal(b, blocksB[r.Rank()]) {
			t.Errorf("rank %d: collectives cross-matched", r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The linear scatter root must be free after (n-1) sender costs — eager
// sends, serialized on the root CPU only.
func TestLinearScatterRootTiming(t *testing.T) {
	const n, bs = 8, 10000
	cfg := testConfig(n)
	var rootDone time.Duration
	res, err := Run(cfg, func(r *Rank) {
		blocks := mkBlocks(n, bs)
		r.Scatter(Linear, 0, blocks)
		if r.Rank() == 0 {
			rootDone = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	nd := cfg.Cluster.Nodes[0]
	per := nd.C + time.Duration(float64(bs)*nd.T*float64(time.Second))
	want := 7 * per
	if rootDone != want {
		t.Fatalf("root free at %v, want %v", rootDone, want)
	}
	if res.Duration <= rootDone {
		t.Fatalf("job end %v should exceed root-free time %v (wire + receive outstanding)", res.Duration, rootDone)
	}
}

// Binomial scatter must finish sooner than linear for small messages on
// a homogeneous cluster (log n latency terms instead of n-1 serialized
// root sends).
func TestBinomialBeatsLinearForSmallMessages(t *testing.T) {
	const n = 16
	run := func(alg Alg) time.Duration {
		res, err := Run(testConfig(n), func(r *Rank) {
			r.Scatter(alg, 0, mkBlocks(n, 64))
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	lin, bin := run(Linear), run(Binomial)
	if bin >= lin {
		t.Fatalf("binomial (%v) should beat linear (%v) for small blocks", bin, lin)
	}
}

func TestRunErrorsOnNilCluster(t *testing.T) {
	if _, err := Run(Config{}, func(r *Rank) {}); err == nil {
		t.Fatal("nil cluster should error")
	}
}

func TestScatterValidation(t *testing.T) {
	_, err := Run(testConfig(4), func(r *Rank) {
		blocks := mkBlocks(4, 8)
		blocks[2] = blocks[2][:4] // unequal size
		r.Scatter(Linear, 0, blocks)
	})
	if err == nil {
		t.Fatal("unequal blocks should fail")
	}
}

func TestResultCounters(t *testing.T) {
	res, err := Run(testConfig(4), func(r *Rank) {
		r.Scatter(Linear, 0, mkBlocks(4, 100))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Messages != 3 {
		t.Fatalf("messages = %d, want 3", res.Net.Messages)
	}
	if res.Net.Bytes != 300 {
		t.Fatalf("bytes = %d, want 300", res.Net.Bytes)
	}
}

// A rank skipping a collective must surface as a deadlock error, not a
// hang: the engine detects processes blocked with no pending events.
// (A skipped *bcast* would NOT deadlock — eager sends complete and the
// stray message just sits in the mailbox; a gather's root genuinely
// waits for the missing contribution.)
func TestMismatchedCollectiveDeadlocks(t *testing.T) {
	_, err := Run(testConfig(4), func(r *Rank) {
		if r.Rank() == 3 {
			return // skips the collective
		}
		r.Gather(Linear, 0, []byte("x"))
	})
	if err == nil {
		t.Fatal("mismatched collective should fail")
	}
	// And the eager-bcast non-deadlock, for contrast.
	res, err := Run(testConfig(4), func(r *Rank) {
		if r.Rank() == 3 {
			return
		}
		r.Bcast(0, []byte("x"))
	})
	if err != nil {
		t.Fatalf("skipped bcast should not deadlock (eager sends): %v", err)
	}
	if res.Net.Messages == 0 {
		t.Fatal("bcast traffic missing")
	}
}
