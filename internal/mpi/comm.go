package mpi

import (
	"fmt"
	"sort"

	"repro/internal/collective"
)

// Comm is a sub-communicator: an ordered subset of world ranks with its
// own rank numbering, over which the collective operations run without
// involving the other processes — the construct behind running
// non-overlapping experiments or application phases side by side.
//
// Every member must construct the communicator with the same member
// list (in the same order) and use it in lockstep, exactly like an MPI
// communicator obtained from the same MPI_Comm_split call.
type Comm struct {
	r       *Rank
	members []int // world ranks, comm rank = index
	myRank  int   // this process's comm rank
	seq     []int // per-world-rank collective sequence counters (lockstep)
	id      int   // tag-space discriminator derived from the members
}

// CommOf builds the communicator containing the given world ranks (in
// comm-rank order). The calling rank must be a member. Duplicate or
// out-of-range members are rejected.
func (r *Rank) CommOf(members []int) (*Comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("mpi: empty communicator")
	}
	seen := map[int]bool{}
	my := -1
	for i, m := range members {
		if m < 0 || m >= r.w.n {
			return nil, fmt.Errorf("mpi: member %d out of range", m)
		}
		if seen[m] {
			return nil, fmt.Errorf("mpi: duplicate member %d", m)
		}
		seen[m] = true
		if m == r.rank {
			my = i
		}
	}
	if my == -1 {
		return nil, fmt.Errorf("mpi: rank %d is not a member of %v", r.rank, members)
	}
	key := commKey(members)
	if r.w.commSeq == nil {
		r.w.commSeq = map[string][]int{}
	}
	seq, ok := r.w.commSeq[key]
	if !ok {
		seq = make([]int, r.w.n)
		r.w.commSeq[key] = seq
	}
	return &Comm{r: r, members: append([]int(nil), members...), myRank: my, seq: seq, id: commID(members)}, nil
}

// commKey canonicalizes a member list for the shared-sequence registry
// (order matters for rank numbering but not for the key: the same set
// reuses the same sequence, preventing tag collisions between
// same-set communicators created in different orders).
func commKey(members []int) string {
	s := append([]int(nil), members...)
	sort.Ints(s)
	return fmt.Sprint(s)
}

// commID folds the member set into a small tag-space discriminator.
func commID(members []int) int {
	h := 0
	s := append([]int(nil), members...)
	sort.Ints(s)
	for _, m := range s {
		h = h*31 + m + 1
	}
	if h < 0 {
		h = -h
	}
	return h % 1021 // prime < 1024
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// World returns the world rank of comm rank i.
func (c *Comm) World(i int) int { return c.members[i] }

// commTagSpace sits above the world-collective tag space.
const commTagSpace = 1 << 30

// nextTag reserves the tag block of the next collective on this
// communicator. Each member advances its own counter; SPMD lockstep
// within the comm keeps the counters aligned, exactly like the world
// collectives' tags.
func (c *Comm) nextTag(op int) int {
	seq := c.seq[c.r.rank]
	c.seq[c.r.rank]++
	return commTagSpace + c.id*(1<<20) + (seq%(1<<16))*16 + op
}

// Send transmits data to comm rank dst.
func (c *Comm) Send(dst, tag int, data []byte) {
	if tag < 0 || tag > MaxUserTag {
		badInput("send", "user tag %d out of range [0, %d]", tag, MaxUserTag)
	}
	c.r.send(c.members[dst], tag, data)
}

// Recv receives from comm rank src (or AnySource) and returns the
// payload with the status translated to comm ranks. Messages from
// non-members do not match a specific src; with AnySource they would —
// callers mixing world point-to-point and comm traffic should
// partition their tags.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	worldSrc := src
	if src != AnySource {
		worldSrc = c.members[src]
	}
	data, st := c.r.Recv(worldSrc, tag)
	st.Source = c.rankOfWorld(st.Source)
	return data, st
}

func (c *Comm) rankOfWorld(w int) int {
	for i, m := range c.members {
		if m == w {
			return i
		}
	}
	return -1
}

// Scatter distributes blocks (indexed by comm rank, meaningful at the
// root) over the communicator and returns this member's block.
func (c *Comm) Scatter(alg Alg, root int, blocks [][]byte) []byte {
	tag := c.nextTag(opScatter)
	tree := alg.Tree(c.Size(), root)
	n := c.Size()
	if n == 1 {
		return blocks[root]
	}
	if c.myRank == root {
		if len(blocks) != n {
			badInput("comm scatter", "root has %d blocks, want %d", len(blocks), n)
		}
		for _, cc := range tree.Children[root] {
			c.r.send(c.members[cc], tag, concatRel(blocks, tree, cc))
		}
		return blocks[root]
	}
	payload, _ := c.r.Recv(c.members[tree.Parent[c.myRank]], tag)
	size := tree.SubtreeSize[c.myRank]
	if size == 0 || len(payload)%size != 0 {
		panic("mpi: comm scatter batch not divisible")
	}
	bs := len(payload) / size
	lo, _ := tree.RelRange(c.myRank)
	for _, cc := range tree.Children[c.myRank] {
		clo, chi := tree.RelRange(cc)
		c.r.send(c.members[cc], tag, payload[(clo-lo)*bs:(chi-lo)*bs])
	}
	return payload[:bs]
}

// Gather collects equal-size blocks at the comm root; the root receives
// them indexed by comm rank, others get nil.
func (c *Comm) Gather(alg Alg, root int, block []byte) [][]byte {
	tag := c.nextTag(opGather)
	tree := alg.Tree(c.Size(), root)
	n := c.Size()
	if n == 1 {
		return [][]byte{append([]byte(nil), block...)}
	}
	bs := len(block)
	lo, hi := tree.RelRange(c.myRank)
	batch := make([]byte, (hi-lo)*bs)
	copy(batch, block)
	for range tree.Children[c.myRank] {
		payload, st := c.Recv(AnySource, tag)
		clo, chi := tree.RelRange(st.Source)
		if len(payload) != (chi-clo)*bs {
			panic("mpi: comm gather batch size mismatch")
		}
		copy(batch[(clo-lo)*bs:(chi-lo)*bs], payload)
	}
	if c.myRank == root {
		out := make([][]byte, n)
		for rel := 0; rel < n; rel++ {
			abs := (rel + root) % n
			out[abs] = batch[rel*bs : (rel+1)*bs : (rel+1)*bs]
		}
		return out
	}
	c.r.send(c.members[tree.Parent[c.myRank]], tag, batch)
	return nil
}

// Bcast sends data from the comm root to every member over a binomial
// tree and returns it on every member.
func (c *Comm) Bcast(root int, data []byte) []byte {
	tag := c.nextTag(opBcast)
	tree := collective.Binomial(c.Size(), root)
	if c.Size() == 1 {
		return data
	}
	if c.myRank != root {
		data, _ = c.r.Recv(c.members[tree.Parent[c.myRank]], tag)
	}
	for _, cc := range tree.Children[c.myRank] {
		c.r.send(c.members[cc], tag, data)
	}
	return data
}

// Barrier synchronizes the communicator's members (dissemination).
func (c *Comm) Barrier() {
	tag := c.nextTag(opBarrier)
	n := c.Size()
	if n == 1 {
		return
	}
	for k := 1; k < n; k <<= 1 {
		to := c.members[(c.myRank+k)%n]
		from := c.members[(c.myRank-k+n)%n]
		c.r.send(to, tag, nil)
		c.r.Recv(from, tag)
	}
}
