package mpi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
)

func faultTestCluster(n int) *cluster.Cluster {
	return cluster.Homogeneous(n,
		cluster.NodeSpec{C: 50 * time.Microsecond, T: 5e-9},
		cluster.LinkSpec{L: 40 * time.Microsecond, Beta: 1e8})
}

func TestBadCollectiveInputReturnsInputError(t *testing.T) {
	cases := []struct {
		name string
		body func(r *Rank)
	}{
		{"scatter-block-count", func(r *Rank) {
			var blocks [][]byte
			if r.Rank() == 0 {
				blocks = [][]byte{{1}, {2}} // 2 blocks for 4 ranks
			}
			r.Scatter(Linear, 0, blocks)
		}},
		{"scatter-unequal-blocks", func(r *Rank) {
			var blocks [][]byte
			if r.Rank() == 0 {
				blocks = [][]byte{{1}, {2, 3}, {4}, {5}}
			}
			r.Scatter(Linear, 0, blocks)
		}},
		{"scatterv-counts", func(r *Rank) {
			r.Scatterv(Linear, 0, nil, []int{1, 2}) // 2 counts for 4 ranks
		}},
		{"gatherv-block-size", func(r *Rank) {
			counts := []int{1, 1, 1, 1}
			r.Gatherv(Linear, 0, []byte{1, 2, 3}, counts) // 3 bytes, counts say 1
		}},
		{"alltoall-blocks", func(r *Rank) {
			r.Alltoall([][]byte{{1}}) // 1 block for 4 ranks
		}},
		{"send-tag-range", func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(1, MaxUserTag+1, nil)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(Config{Cluster: faultTestCluster(4)}, tc.body)
			var ie *InputError
			if !errors.As(err, &ie) {
				t.Fatalf("Run returned %v, want *InputError", err)
			}
		})
	}
}

// TestCrashedNonRootNodeReturnsCrashError is the issue's acceptance
// scenario: with a non-root node crashed mid-job, Run must return a
// typed crash error instead of hanging.
func TestCrashedNonRootNodeReturnsCrashError(t *testing.T) {
	cfg := Config{
		Cluster: faultTestCluster(4),
		Faults:  &faults.Plan{Crashes: []faults.Crash{{Node: 2, At: 100 * time.Microsecond}}},
	}
	_, err := Run(cfg, func(r *Rank) {
		r.Sleep(1 * time.Millisecond) // let the crash fire first
		// Root gathers from everyone; rank 2 is dead, so the gather
		// cannot complete.
		r.Gather(Linear, 0, make([]byte, 100))
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("Run returned %v, want *CrashError", err)
	}
	if len(ce.Nodes) != 1 || ce.Nodes[0] != 2 {
		t.Fatalf("CrashError.Nodes = %v, want [2]", ce.Nodes)
	}
}

func TestRunSurvivesLossAndStragglers(t *testing.T) {
	cfg := Config{
		Cluster: faultTestCluster(4),
		Profile: cluster.LAM(),
		Seed:    3,
		Faults: &faults.Plan{
			Loss:       []faults.LinkLoss{{Src: 1, Dst: 0, Prob: 0.3, RTO: 1 * time.Millisecond}},
			Stragglers: []faults.Straggler{{Node: 3, CPUX: 2}},
		},
	}
	var gathered int
	res, err := Run(cfg, func(r *Rank) {
		for i := 0; i < 10; i++ {
			out := r.Gather(Binomial, 0, make([]byte, 2000))
			if r.Rank() == 0 {
				gathered = len(out)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if gathered != 4 {
		t.Fatalf("gather returned %d blocks, want 4", gathered)
	}
	if res.Faults.Lost == 0 {
		t.Fatalf("no injected loss recorded over 10 gathers at 30%% loss, stats %+v", res.Faults)
	}
	if res.Net.Stalled != res.Faults.Stalled {
		t.Fatalf("network counter (%v) and injector stats (%v) disagree on stall time",
			res.Net.Stalled, res.Faults.Stalled)
	}
}

func TestRunFaultDeterminism(t *testing.T) {
	cfg := Config{
		Cluster: faultTestCluster(4),
		Profile: cluster.MPICH(),
		Seed:    17,
		Faults:  faults.Demo(4),
	}
	trial := func() (time.Duration, faults.Stats) {
		res, err := Run(cfg, func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.Gather(Linear, 0, make([]byte, 4000))
				r.Bcast(0, make([]byte, 1000))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration, res.Faults
	}
	d1, s1 := trial()
	d2, s2 := trial()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("same seed diverged: %v/%+v vs %v/%+v", d1, s1, d2, s2)
	}
}

func TestRecvTimeoutAndSendTimeout(t *testing.T) {
	var recvErr, sendOK, tagErr error
	_, err := Run(Config{Cluster: faultTestCluster(2)}, func(r *Rank) {
		if r.Rank() == 1 {
			_, _, recvErr = r.RecvTimeout(0, 5, 1*time.Millisecond)
			// The late message still arrives; drain it so the job ends
			// cleanly.
			r.Recv(0, 5)
		} else {
			tagErr = r.SendTimeout(1, MaxUserTag+1, nil, 0)
			r.Sleep(10 * time.Millisecond)
			sendOK = r.SendTimeout(1, 5, make([]byte, 100), time.Second)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var te *TimeoutError
	if !errors.As(recvErr, &te) {
		t.Fatalf("RecvTimeout returned %v, want *TimeoutError", recvErr)
	}
	if sendOK != nil {
		t.Fatalf("SendTimeout with slack deadline failed: %v", sendOK)
	}
	var ie *InputError
	if !errors.As(tagErr, &ie) {
		t.Fatalf("SendTimeout with bad tag returned %v, want *InputError", tagErr)
	}
}

func TestRecvTimeoutDetectsCrashedPeer(t *testing.T) {
	cfg := Config{
		Cluster: faultTestCluster(3),
		Faults:  &faults.Plan{Crashes: []faults.Crash{{Node: 1, At: 0}}},
	}
	var recvErr error
	_, err := Run(cfg, func(r *Rank) {
		if r.Rank() == 2 {
			r.Sleep(1 * time.Millisecond)
			_, _, recvErr = r.RecvTimeout(1, 7, time.Second)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var ce *CrashError
	if !errors.As(recvErr, &ce) {
		t.Fatalf("RecvTimeout returned %v, want *CrashError", recvErr)
	}
}
