package mpi

// SharedCell is a harness-level cell visible to every rank of a job.
// Because the simulation kernel runs exactly one process at a time,
// plain reads and writes are race-free; the cell carries no virtual
// cost and must therefore never stand in for real communication — it
// exists so measurement harnesses (package mpib) can coordinate
// repetition counts and exchange timing samples out of band, the way a
// real benchmark would use a side channel or pre-agreed script.
type SharedCell struct {
	V any
}

// SharedCell returns the cell associated with this call site: the k-th
// call on every rank returns the same cell (SPMD lockstep), so all
// ranks of one harness step share state without messages.
func (r *Rank) SharedCell() *SharedCell {
	seq := r.w.cellSeq[r.rank]
	r.w.cellSeq[r.rank]++
	if c, ok := r.w.cells[seq]; ok {
		return c
	}
	c := &SharedCell{}
	r.w.cells[seq] = c
	return c
}
