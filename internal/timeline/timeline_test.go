package timeline

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

func traceCollective(t *testing.T, n int, body func(r *mpi.Rank)) []simnet.TraceEvent {
	t.Helper()
	cfg := mpi.Config{
		Cluster: cluster.Homogeneous(n,
			cluster.NodeSpec{C: 50 * time.Microsecond, T: 5e-9},
			cluster.LinkSpec{L: 40 * time.Microsecond, Beta: 1e8}),
		Profile: cluster.Ideal(),
		Seed:    1,
	}
	var b Builder
	installed := false
	_, err := mpi.Run(cfg, func(r *mpi.Rank) {
		if !installed {
			r.Network().SetTracer(b.Collect)
			installed = true
		}
		r.HardSync()
		body(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.Events()
}

func TestAssemblePairsLifecycles(t *testing.T) {
	events := traceCollective(t, 4, func(r *mpi.Rank) {
		blocks := make([][]byte, 4)
		for i := range blocks {
			blocks[i] = make([]byte, 1000)
		}
		r.Scatter(mpi.Linear, 0, blocks)
	})
	msgs := assemble(events)
	if len(msgs) != 3 {
		t.Fatalf("messages = %d, want 3", len(msgs))
	}
	for _, m := range msgs {
		if !m.haveInject || !m.haveDeliver || !m.haveEnd {
			t.Fatalf("incomplete lifecycle: %+v", m)
		}
		if !(m.sendAt <= m.injectAt && m.injectAt <= m.deliverAt && m.deliverAt <= m.recvDone) {
			t.Fatalf("timestamps out of order: %+v", m)
		}
		if m.src != 0 {
			t.Fatalf("scatter messages come from the root: %+v", m)
		}
	}
}

func TestRenderShowsSerializedRootAndParallelWires(t *testing.T) {
	events := traceCollective(t, 4, func(r *mpi.Rank) {
		blocks := make([][]byte, 4)
		for i := range blocks {
			blocks[i] = make([]byte, 20000)
		}
		r.Scatter(mpi.Linear, 0, blocks)
	})
	out := Render(events, 4, 60)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "S") {
		t.Fatalf("root lane should show send CPU:\n%s", out)
	}
	for _, lane := range lines[1:4] {
		if !strings.Contains(lane, "~") || !strings.Contains(lane, "r") {
			t.Fatalf("leaf lanes should show wire + receive:\n%s", out)
		}
		if strings.Contains(lane, "S") {
			t.Fatalf("leaves of a scatter never send:\n%s", out)
		}
	}
	if !strings.Contains(out, "S=send CPU") {
		t.Fatal("legend missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	if !strings.Contains(Render(nil, 4, 40), "no traffic") {
		t.Fatal("empty render should say so")
	}
}

func TestBuilderReset(t *testing.T) {
	var b Builder
	b.Collect(simnet.TraceEvent{})
	if len(b.Events()) != 1 {
		t.Fatal("collect failed")
	}
	b.Reset()
	if len(b.Events()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestRenderWidthClamp(t *testing.T) {
	events := traceCollective(t, 2, func(r *mpi.Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, make([]byte, 100))
		} else {
			r.Recv(0, 0)
		}
	})
	out := Render(events, 2, 1)
	if len(strings.Split(out, "\n")) < 3 {
		t.Fatal("width should be clamped")
	}
}
