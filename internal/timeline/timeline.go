// Package timeline renders simulator traces as per-rank swimlanes,
// visualizing how a collective operation's phases overlap: sender CPU
// serialization, parallel wire transfers and receiver processing — the
// structure the LMO model separates and the traditional models
// conflate.
package timeline

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/simnet"
)

// Lane markers, by priority (later overwrite earlier).
const (
	markIdle = ' '
	markWire = '~' // message in flight toward this rank
	markRecv = 'r' // delivered, waiting for / being processed by the receiver
	markSend = 'S' // sender CPU busy processing an outgoing message
)

// Builder accumulates trace events; install Collect as the network's
// tracer.
type Builder struct {
	events []simnet.TraceEvent
}

// Collect appends one event; pass it to simnet.Network.SetTracer.
func (b *Builder) Collect(ev simnet.TraceEvent) { b.events = append(b.events, ev) }

// Events returns the collected events in arrival order.
func (b *Builder) Events() []simnet.TraceEvent { return b.events }

// Reset clears the collected events.
func (b *Builder) Reset() { b.events = b.events[:0] }

// message pairs up the lifecycle timestamps of one message.
type message struct {
	src, dst            int
	sendAt, injectAt    time.Duration
	deliverAt, recvDone time.Duration
	haveInject          bool
	haveDeliver         bool
	haveEnd             bool
}

// assemble matches events into message lifecycles. Events of one
// message arrive in order (send-start, inject, deliver, recv-done), and
// messages on one (src,dst) flow are non-overtaking, so matching by
// flow FIFO is exact.
func assemble(events []simnet.TraceEvent) []*message {
	type flow struct{ src, dst, tag int }
	open := map[flow][]*message{}
	var all []*message
	for _, ev := range events {
		f := flow{ev.Src, ev.Dst, ev.Tag}
		switch ev.Kind {
		case simnet.TraceSendStart:
			m := &message{src: ev.Src, dst: ev.Dst, sendAt: ev.At}
			open[f] = append(open[f], m)
			all = append(all, m)
		case simnet.TraceInject:
			for _, m := range open[f] {
				if !m.haveInject {
					m.injectAt = ev.At
					m.haveInject = true
					break
				}
			}
		case simnet.TraceDeliver:
			for _, m := range open[f] {
				if !m.haveDeliver {
					m.deliverAt = ev.At
					m.haveDeliver = true
					break
				}
			}
		case simnet.TraceRecvDone:
			for i, m := range open[f] {
				if m.haveDeliver && !m.haveEnd {
					m.recvDone = ev.At
					m.haveEnd = true
					open[f] = append(open[f][:i:i], open[f][i+1:]...)
					break
				}
			}
		}
	}
	return all
}

// Render draws the swimlanes for nRanks ranks over a width-character
// time axis. Markers: 'S' sender CPU busy, '~' message in flight
// toward the rank, 'r' delivered-to-processed on the receiver.
func Render(events []simnet.TraceEvent, nRanks, width int) string {
	if width < 20 {
		width = 20
	}
	msgs := assemble(events)
	var end time.Duration
	for _, m := range msgs {
		if m.recvDone > end {
			end = m.recvDone
		}
		if m.deliverAt > end {
			end = m.deliverAt
		}
	}
	if end == 0 || len(msgs) == 0 {
		return "(no traffic)\n"
	}

	lanes := make([][]byte, nRanks)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(string(markIdle), width))
	}
	col := func(t time.Duration) int {
		c := int(float64(t) / float64(end) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	paint := func(lane int, from, to time.Duration, mark byte) {
		if lane < 0 || lane >= nRanks {
			return
		}
		a, b := col(from), col(to)
		for c := a; c <= b; c++ {
			if precedence(mark) >= precedence(lanes[lane][c]) {
				lanes[lane][c] = mark
			}
		}
	}
	for _, m := range msgs {
		paint(m.src, m.sendAt, m.injectAt, markSend)
		if m.haveDeliver {
			paint(m.dst, m.injectAt, m.deliverAt, markWire)
		}
		if m.haveEnd {
			paint(m.dst, m.deliverAt, m.recvDone, markRecv)
		}
	}

	var b strings.Builder
	for i, lane := range lanes {
		fmt.Fprintf(&b, "rank %2d |%s|\n", i, lane)
	}
	fmt.Fprintf(&b, "         0%s%v\n", strings.Repeat(" ", width-len(end.String())), end)
	b.WriteString("         S=send CPU  ~=in flight  r=deliver→processed\n")
	return b.String()
}

func precedence(mark byte) int {
	switch mark {
	case markSend:
		return 3
	case markRecv:
		return 2
	case markWire:
		return 1
	default:
		return 0
	}
}
