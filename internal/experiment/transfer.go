package experiment

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/mpi"
)

// Transfer tests the §III observation that the LMO model splits into an
// analytic part (processor/network hardware parameters) and an
// empirical part (M1, M2, escalation statistics) that belongs to the
// MPI implementation: a model estimated under LAM is applied to a
// cluster running MPICH. The analytic predictions (scatter, small/large
// gather) transfer; the empirical gather thresholds do not, and
// carrying them over misclassifies the 65–125 KB range, where the two
// implementations genuinely differ.
func Transfer(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := cfg.Cluster.N()

	lamCfg := cfg
	lamCfg.Profile = cluster.LAM()
	mpichCfg := cfg
	mpichCfg.Profile = cluster.MPICH()

	// Estimate everything under LAM.
	lmo, _, err := estimate.LMOX(lamCfg.mpiConfig(), lamCfg.Est)
	if err != nil {
		return nil, err
	}
	irrLAM, _, err := estimate.DetectGatherIrregularity(
		lamCfg.mpiConfig(), cfg.Root, estimate.DefaultScanSizes(), cfg.ScanReps, cfg.Est)
	if err != nil {
		return nil, err
	}
	lmo.Gather = irrLAM

	// Observe scatter under MPICH — the analytic part should transfer.
	scatterObs, err := Observe(mpichCfg, Scatter, mpi.Linear)
	if err != nil {
		return nil, err
	}
	scatterPred := predict(scatterObs.Sizes, func(m int) float64 { return lmo.ScatterLinear(cfg.Root, n, m) })

	rep := &Report{
		ID:    "transfer",
		Title: "§III: transferring a LAM-estimated model to an MPICH cluster",
	}
	rows := [][]string{{"quantity", "transfers?", "evidence"}}
	rows = append(rows, []string{
		"analytic parameters (C, t, L, β)", "yes",
		fmt.Sprintf("LAM-estimated LMO predicts MPICH linear scatter with %.0f%% mean |rel.err| (the hardware did not change)",
			100*meanAbsRelError(scatterObs.Mean, scatterPred)),
	})

	// The 65–125 KB band: MPICH still escalates there (its M2 is
	// 125 KB) while the LAM-estimated thresholds say the region ended.
	probe := 96 << 10
	gObs, err := Observe(withSizes(mpichCfg, []int{probe}), Gather, mpi.Linear)
	if err != nil {
		return nil, err
	}
	lamPred := lmo.GatherLinear(cfg.Root, n, probe)
	misclass := math.Abs(lamPred-gObs.Mean[0]) / gObs.Mean[0]
	rows = append(rows, []string{
		"empirical parameters (M1, M2, escalations)", "no",
		fmt.Sprintf("at 96 KB the LAM thresholds (M1=%dK, M2=%dK) predict the serialized regime, but MPICH (M2=125K) still escalates: %.0f%% error",
			irrLAM.M1>>10, irrLAM.M2>>10, 100*misclass),
	})

	// Re-detecting under MPICH restores the fit.
	irrMPICH, _, err := estimate.DetectGatherIrregularity(
		mpichCfg.mpiConfig(), cfg.Root, estimate.DefaultScanSizes(), cfg.ScanReps, cfg.Est)
	if err != nil {
		return nil, err
	}
	lmoM := *lmo
	lmoM.Gather = irrMPICH
	mpichPred := lmoM.GatherLinear(cfg.Root, n, probe)
	refit := math.Abs(mpichPred-gObs.Mean[0]) / gObs.Mean[0]
	rows = append(rows, []string{
		"empirical parameters re-detected on MPICH", "—",
		fmt.Sprintf("a fresh irregularity scan (M1=%dK, M2=%dK) brings the 96 KB prediction back to %.0f%% error",
			irrMPICH.M1>>10, irrMPICH.M2>>10, 100*refit),
	})

	rep.Tables = append(rep.Tables, TableBlock{Caption: "what transfers across MPI implementations", Rows: rows})
	rep.Notes = append(rep.Notes,
		"the split mirrors the paper's design: analytic point-to-point parameters describe the hardware, the extra empirical parameters describe the MPI implementation's TCP behaviour and must be re-measured per implementation (§III)")
	return rep, nil
}

// withSizes returns cfg with the size sweep replaced.
func withSizes(cfg Config, sizes []int) Config {
	cfg.Sizes = sizes
	return cfg
}
