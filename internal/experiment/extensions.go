package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/mpi"
	"repro/internal/mpib"
	"repro/internal/optimize"
	"repro/internal/stats"
)

// Ablation quantifies the design decisions DESIGN.md calls out:
//
//  1. Model ablation — the original five-parameter LMO (network latency
//     folded into the processor constants) against the paper's
//     six-parameter extension, on linear scatter prediction accuracy
//     and on recovered parameters.
//  2. Substrate ablation — the TCP irregularity machinery on and off,
//     showing how much of the observed collective time the leap and
//     the escalations contribute (what the traditional models miss).
func Ablation(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := cfg.Cluster.N()
	rep := &Report{ID: "ablation", Title: "Ablations: original vs extended LMO; TCP irregularities on/off"}

	// --- model ablation ---
	orig, _, err := estimate.LMOOriginal(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, err
	}
	ext, _, err := estimate.LMOX(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, err
	}
	// Score on the leap-free size range so the ablation isolates the
	// latency-separation effect: neither LMO variant models the TCP
	// leap, and its unmodeled cost can accidentally favour the variant
	// whose constants are inflated.
	scoreCfg := cfg
	if cfg.Profile.LeapAt > 0 {
		var below []int
		for _, m := range cfg.Sizes {
			if m < cfg.Profile.LeapAt {
				below = append(below, m)
			}
		}
		if len(below) >= 2 {
			scoreCfg.Sizes = below
		}
	}
	obs, err := Observe(scoreCfg, Scatter, mpi.Linear)
	if err != nil {
		return nil, err
	}
	origPred := predict(obs.Sizes, func(m int) float64 { return orig.ScatterLinear(cfg.Root, n, m) })
	extPred := predict(obs.Sizes, func(m int) float64 { return ext.ScatterLinear(cfg.Root, n, m) })
	rows := [][]string{
		{"model", "scatter mean |rel.err| (below the leap)", "C misattribution"},
		{"LMO original (5 params)", fmt.Sprintf("%.1f%%", 100*meanAbsRelError(obs.Mean, origPred)),
			cErr(cfg, orig.C())},
		{"LMO extended (6 params)", fmt.Sprintf("%.1f%%", 100*meanAbsRelError(obs.Mean, extPred)),
			cErr(cfg, ext.C)},
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "model ablation: separating the fixed network latency", Rows: rows})

	// --- substrate ablation (full size range) ---
	obsFull, err := Observe(cfg, Scatter, mpi.Linear)
	if err != nil {
		return nil, err
	}
	ideal := cfg
	ideal.Profile = cluster.Ideal()
	obsIdeal, err := Observe(ideal, Scatter, mpi.Linear)
	if err != nil {
		return nil, err
	}
	gObs, err := Observe(cfg, Gather, mpi.Linear)
	if err != nil {
		return nil, err
	}
	gIdeal, err := Observe(ideal, Gather, mpi.Linear)
	if err != nil {
		return nil, err
	}
	rows = [][]string{{"size", "scatter TCP/ideal", "gather TCP/ideal"}}
	for i, m := range cfg.Sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%dK", m>>10),
			fmt.Sprintf("%.2f×", obsFull.Mean[i]/obsIdeal.Mean[i]),
			fmt.Sprintf("%.2f×", gObs.Mean[i]/gIdeal.Mean[i]),
		})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "substrate ablation: TCP irregularities' contribution", Rows: rows})

	// --- protocol ablation: eager vs rendezvous sends ---
	// Under the rendezvous protocol the root of a linear scatter
	// serializes whole point-to-point times — the Hockney serial
	// reading's assumption. Eq (4) (and the whole Fig 1 argument)
	// presumes eager sends; this ablation makes the dependency visible.
	rdv := ideal
	rdv.Profile = cluster.Ideal().RendezvousAt(1)
	obsRdv, err := Observe(rdv, Scatter, mpi.Linear)
	if err != nil {
		return nil, err
	}
	hv := ext.HockneyView()
	rows = [][]string{{"size", "LMO eq(4) err (eager)", "LMO eq(4) err (rendezvous)", "Hockney-serial err (rendezvous)"}}
	for i, m := range cfg.Sizes {
		eq4 := ext.ScatterLinear(cfg.Root, n, m)
		serial := hv.ScatterLinearSerial(cfg.Root, m)
		rows = append(rows, []string{
			fmt.Sprintf("%dK", m>>10),
			fmt.Sprintf("%+.0f%%", 100*(eq4-obsIdeal.Mean[i])/obsIdeal.Mean[i]),
			fmt.Sprintf("%+.0f%%", 100*(eq4-obsRdv.Mean[i])/obsRdv.Mean[i]),
			fmt.Sprintf("%+.0f%%", 100*(serial-obsRdv.Mean[i])/obsRdv.Mean[i]),
		})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "protocol ablation: eager vs rendezvous sends", Rows: rows})
	rep.Notes = append(rep.Notes,
		"the original model folds L/2 into every processor constant; the extension separates it and predicts scatter better",
		"gather's TCP factor explodes in the irregular region (escalations) and stays >1 above M2 (ingress serialization); scatter only pays the leap",
		"under rendezvous sends eq (4) under-predicts badly while the Hockney serial sum becomes the right model — the LMO formulas encode the eager protocol's overlap")
	return rep, nil
}

func cErr(cfg Config, c []float64) string {
	s := 0.0
	for i, nd := range cfg.Cluster.Nodes {
		truth := nd.C.Seconds()
		d := (c[i] - truth) / truth
		if d < 0 {
			d = -d
		}
		s += d
	}
	return fmt.Sprintf("%.0f%% mean |err| vs ground truth", 100*s/float64(len(c)))
}

// AlgZoo extends the paper's Fig 6 to the full algorithm zoo (linear,
// binomial, binary, chain): every algorithm is observed across sizes,
// the LMO model predicts each, and the model-driven selection is
// scored against the observed fastest.
func AlgZoo(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := cfg.Cluster.N()
	lmo, _, err := estimate.LMOX(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "algzoo",
		Title:  "Extension: scatter algorithm zoo — observation vs LMO prediction",
		XLabel: "message size (bytes)",
		YLabel: "execution time (s)",
	}
	algs := mpi.Algorithms()
	observed := map[mpi.Alg]Observation{}
	for _, alg := range algs {
		o, err := Observe(cfg, Scatter, alg)
		if err != nil {
			return nil, err
		}
		observed[alg] = o
		rep.Series = append(rep.Series, series("observed "+alg.String(), o.Sizes, o.Mean))
	}
	for _, alg := range algs {
		alg := alg
		pred := predict(cfg.Sizes, func(m int) float64 {
			if alg == mpi.Linear {
				return lmo.ScatterLinear(cfg.Root, n, m)
			}
			return lmo.ScatterTree(alg.Tree(n, cfg.Root), m)
		})
		rep.Series = append(rep.Series, series("LMO "+alg.String(), cfg.Sizes, pred))
	}

	rows := [][]string{{"size", "observed fastest", "LMO picks", "penalty of LMO pick"}}
	correct := 0
	for i, m := range cfg.Sizes {
		fastest := algs[0]
		for _, alg := range algs[1:] {
			if observed[alg].Mean[i] < observed[fastest].Mean[i] {
				fastest = alg
			}
		}
		pick, _ := optimize.SelectScatterAlgAmong(lmo, cfg.Root, n, m, nil)
		if pick == fastest {
			correct++
		}
		penalty := observed[pick].Mean[i] / observed[fastest].Mean[i]
		rows = append(rows, []string{
			fmt.Sprintf("%dK", m>>10), fastest.String(), pick.String(), fmt.Sprintf("%.2f×", penalty),
		})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "model-driven selection over four algorithms", Rows: rows})
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"LMO picked the observed-fastest algorithm on %d/%d sizes; where it differed, the penalty column shows the cost of the model's choice",
		correct, len(cfg.Sizes)))
	return rep, nil
}

// Timing compares the MPIBlib timing methods of §IV: root-side timing
// (fast, used for estimation) against max timing (the true makespan)
// on linear scatter and gather across sizes.
func Timing(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	// The comparison isolates the timing methods themselves, so it runs
	// without TCP noise: otherwise the two measurement loops sample
	// different random escalations and their ratio is meaningless.
	cfg.Profile = cluster.Ideal()
	rep := &Report{
		ID:     "timing",
		Title:  "§IV: timing methods — root-side vs makespan",
		XLabel: "message size (bytes)",
		YLabel: "execution time (s)",
	}
	type row struct{ root, max []float64 }
	results := map[CollectiveOp]*row{}
	for _, op := range []CollectiveOp{Scatter, Gather} {
		r := &row{make([]float64, len(cfg.Sizes)), make([]float64, len(cfg.Sizes))}
		results[op] = r
		op := op
		_, err := mpi.Run(cfg.mpiConfig(), func(rk *mpi.Rank) {
			n := rk.Size()
			for si, m := range cfg.Sizes {
				fn := func() {
					if op == Scatter {
						blocks := make([][]byte, n)
						for i := range blocks {
							blocks[i] = make([]byte, m)
						}
						rk.Scatter(mpi.Linear, cfg.Root, blocks)
					} else {
						rk.Gather(mpi.Linear, cfg.Root, make([]byte, m))
					}
				}
				mr := mpib.Measure(rk, cfg.Root, mpib.RootTiming,
					mpib.Options{MinReps: cfg.ObsReps, MaxReps: cfg.ObsReps}, fn)
				mm := mpib.Measure(rk, cfg.Root, mpib.MaxTiming,
					mpib.Options{MinReps: cfg.ObsReps, MaxReps: cfg.ObsReps}, fn)
				if rk.Rank() == 0 {
					r.root[si] = mr.Mean
					r.max[si] = mm.Mean
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}
	rep.Series = append(rep.Series,
		series("scatter root-timing", cfg.Sizes, results[Scatter].root),
		series("scatter makespan", cfg.Sizes, results[Scatter].max),
		series("gather root-timing", cfg.Sizes, results[Gather].root),
		series("gather makespan", cfg.Sizes, results[Gather].max),
	)
	// Root timing underestimates scatter (the root finishes first) but
	// matches gather (the root finishes last).
	gapScatter := stats.Mean(ratio(results[Scatter].root, results[Scatter].max))
	gapGather := stats.Mean(ratio(results[Gather].root, results[Gather].max))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"root-timing captures %.0f%% of the scatter makespan but %.0f%% of the gather makespan — why sender-side timing works for the round-trip-style estimation experiments (§IV) yet observation of scatter needs the makespan",
		100*gapScatter, 100*gapGather))
	return rep, nil
}

func ratio(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		if b[i] != 0 {
			out[i] = a[i] / b[i]
		}
	}
	return out
}
