package experiment

import (
	"fmt"
	"time"

	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/mpib"
	"repro/internal/stats"
)

// FaultsExp is the robustness experiment ("-exp faults"): it estimates
// the LMO model twice — on the healthy cluster and on the same cluster
// under a seeded fault plan (by default the reference plan of
// faults.Demo: a lossy link, a persistently degraded link and a
// straggler node) — and lays both models against the linear scatter
// each platform actually exhibits.
//
// The point the report makes: persistent faults (the straggler, the
// degraded link) are platform traits a robust estimation bakes into
// the model, while transient loss spikes are measurement noise the
// MAD-based outlier rejection and retry-with-backoff absorb. The
// degradation accounting of the estimation report (retries,
// non-converged measurements, dropped experiments, per-processor
// confidence) shows how gracefully the procedure got there.
func FaultsExp(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := cfg.Cluster.N()
	rep := &Report{
		ID:     "faults",
		Title:  "Robustness: LMO estimation under a seeded fault plan",
		XLabel: "message size (bytes)",
		YLabel: "time (s)",
	}

	clean := cfg
	clean.Faults = nil
	faulty := cfg
	if faulty.Faults.Empty() {
		faulty.Faults = faults.Demo(n)
	}
	faulty.Est.Mpib = robustMpib(faulty.Est.Mpib)

	mClean, repClean, err := estimate.LMOX(clean.mpiConfig(), clean.Est)
	if err != nil {
		return nil, fmt.Errorf("clean estimation: %w", err)
	}
	mFaulty, repFaulty, err := estimate.LMOX(faulty.mpiConfig(), faulty.Est)
	if err != nil {
		return nil, fmt.Errorf("faulty estimation: %w", err)
	}

	obsClean, _, err := observeScatterRobust(clean, 0)
	if err != nil {
		return nil, err
	}
	// The faulty observation rejects spikes with the same MAD threshold
	// the estimation used: the comparison target is the platform's
	// typical behaviour, not the occasional RTO stall.
	obsFaulty, fstats, err := observeScatterRobust(faulty, faulty.Est.Mpib.OutlierMAD)
	if err != nil {
		return nil, err
	}

	predClean := predict(cfg.Sizes, func(m int) float64 { return mClean.ScatterLinear(cfg.Root, n, m) })
	predFaulty := predict(cfg.Sizes, func(m int) float64 { return mFaulty.ScatterLinear(cfg.Root, n, m) })
	rep.Series = append(rep.Series,
		series("observed (healthy)", cfg.Sizes, obsClean.Mean),
		series("LMO healthy", cfg.Sizes, predClean),
		series("observed (faulty)", cfg.Sizes, obsFaulty.Mean),
		series("LMO faulty", cfg.Sizes, predFaulty),
	)

	errClean := meanAbsRelError(obsClean.Mean, predClean)
	errFaulty := meanAbsRelError(obsFaulty.Mean, predFaulty)
	rows := [][]string{
		{"platform", "experiments", "repetitions", "retries", "non-converged", "dropped", "min confidence", "scatter err"},
		accountingRow("healthy", repClean, errClean),
		accountingRow("faulty", repFaulty, errFaulty),
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "estimation accounting, each model vs its own platform", Rows: rows})
	rep.Tables = append(rep.Tables, TableBlock{Caption: "injected fault plan", Rows: planRows(faulty.Faults)})
	rep.Tables = append(rep.Tables, TableBlock{
		Caption: "injector activity during the faulty scatter sweep",
		Rows: [][]string{
			{"packets lost", "stall time", "crashes"},
			{fmt.Sprint(fstats.Lost), fstats.Stalled.Round(time.Millisecond).String(), fmt.Sprint(fstats.Crashes)},
		},
	})

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("prediction error vs the platform the model was estimated on: %.1f%% healthy, %.1f%% faulty — the straggler and the degraded link are platform traits the robust estimation captures; only the transient loss spikes are rejected as noise", 100*errClean, 100*errFaulty),
		"all faults are drawn from a dedicated RNG stream derived from the run seed: the same seed reproduces the same losses, stalls and results, and an empty plan leaves the trajectory bit-identical to a run without fault injection",
	)
	return rep, nil
}

// robustMpib fills the measurement options with the robustness defaults
// the fault experiment uses when the caller left them off.
func robustMpib(o mpib.Options) mpib.Options {
	if o.OutlierMAD == 0 {
		o.OutlierMAD = 3
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.MaxReps == 0 {
		o.MaxReps = 40
	}
	return o
}

// accountingRow formats one platform's estimation report for the table.
func accountingRow(name string, r estimate.Report, predErr float64) []string {
	minConf := 1.0
	for _, c := range r.Confidence {
		if c < minConf {
			minConf = c
		}
	}
	return []string{
		name,
		fmt.Sprint(r.Experiments),
		fmt.Sprint(r.Repetitions),
		fmt.Sprint(r.Retries),
		fmt.Sprint(r.NonConverged),
		fmt.Sprint(len(r.Dropped)),
		fmt.Sprintf("%.2f", minConf),
		fmt.Sprintf("%.1f%%", 100*predErr),
	}
}

// planRows renders a fault plan as table rows.
func planRows(p *faults.Plan) [][]string {
	node := func(i int) string {
		if i == faults.Any {
			return "*"
		}
		return fmt.Sprint(i)
	}
	rows := [][]string{{"fault", "where", "what"}}
	for _, l := range p.Loss {
		rows = append(rows, []string{"loss",
			fmt.Sprintf("link %s->%s", node(l.Src), node(l.Dst)),
			fmt.Sprintf("%.1f%% per transfer, RTO %v", 100*l.Prob, l.RTO)})
	}
	for _, d := range p.Degrade {
		window := "always"
		if d.Until > d.From {
			window = fmt.Sprintf("%v-%v", d.From, d.Until)
		}
		rows = append(rows, []string{"degrade",
			fmt.Sprintf("link %s->%s", node(d.Src), node(d.Dst)),
			fmt.Sprintf("latency x%g, rate x%g, %s", d.LatencyX, d.RateX, window)})
	}
	for _, s := range p.Stragglers {
		rows = append(rows, []string{"straggler", fmt.Sprintf("node %d", s.Node), fmt.Sprintf("CPU x%g", s.CPUX)})
	}
	for _, c := range p.Crashes {
		rows = append(rows, []string{"crash", fmt.Sprintf("node %d", c.Node), fmt.Sprintf("at %v", c.At)})
	}
	return rows
}

// observeScatterRobust is Observe for linear scatter, with optional
// MAD-based outlier rejection of the per-size sample series, and it
// additionally returns the injector activity of the run.
func observeScatterRobust(cfg Config, outlierMAD float64) (Observation, faults.Stats, error) {
	cfg = cfg.withDefaults()
	obs := Observation{Sizes: cfg.Sizes}
	obs.Mean = make([]float64, len(cfg.Sizes))
	obs.Max = make([]float64, len(cfg.Sizes))
	obs.Min = make([]float64, len(cfg.Sizes))
	n := cfg.Cluster.N()
	res, err := mpi.Run(cfg.mpiConfig(), func(r *mpi.Rank) {
		for si, m := range cfg.Sizes {
			blocks := make([][]byte, n)
			for i := range blocks {
				blocks[i] = make([]byte, m)
			}
			meas := mpib.Measure(r, cfg.Root, mpib.MaxTiming,
				mpib.Options{MinReps: cfg.ObsReps, MaxReps: cfg.ObsReps, OutlierMAD: outlierMAD},
				func() { r.Scatter(mpi.Linear, cfg.Root, blocks) })
			if r.Rank() == 0 {
				obs.Mean[si] = meas.Mean
				obs.Max[si] = stats.Max(meas.Samples)
				obs.Min[si] = stats.Min(meas.Samples)
			}
		}
	})
	return obs, res.Faults, err
}
