package experiment

import (
	"fmt"
	"math"
	"time"

	"repro/internal/estimate"
	"repro/internal/mpi"
	"repro/internal/mpib"
)

// Precision studies the statistical methodology of §IV / MPIBlib: the
// adaptive repetition loop stops when the Student-t confidence
// interval's relative error reaches the target. Two observables make
// the trade-off visible:
//
//   - round-trips (the estimation experiments) are clean on a switched
//     cluster, so they converge at the minimum repetitions for every
//     target — which is exactly why the paper's estimation is cheap;
//   - linear gather in the irregular region is dominated by random
//     escalations, so the repetitions needed explode as the target
//     tightens — which is why the paper measures the irregular region
//     with a fixed-repetition scan instead.
func Precision(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "precision", Title: "§IV: confidence-target vs measurement cost"}

	targets := []float64{0.25, 0.1, 0.05, 0.025}
	rows := [][]string{{"target rel.err", "round-trip reps", "gather(48K) reps", "gather CI half-width"}}
	for _, target := range targets {
		var rtN, gN int
		var gCI float64
		_, err := mpi.Run(cfg.mpiConfig(), func(r *mpi.Rank) {
			opts := mpib.Options{RelErr: target, MinReps: 8, MaxReps: 200}
			rt := mpib.Measure(r, 0, mpib.RootTiming, opts, func() {
				switch r.Rank() {
				case 0:
					r.Send(1, 0, make([]byte, 32<<10))
					r.Recv(1, 0)
				case 1:
					r.Recv(0, 0)
					r.Send(0, 0, make([]byte, 32<<10))
				}
			})
			g := mpib.Measure(r, cfg.Root, mpib.RootTiming, opts, func() {
				r.Gather(mpi.Linear, cfg.Root, make([]byte, 48<<10))
			})
			if r.Rank() == 0 {
				rtN, gN, gCI = rt.N, g.N, g.CIHalf
			}
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f%%", 100*target),
			fmt.Sprint(rtN),
			fmt.Sprint(gN),
			fmt.Sprintf("%.1fms", gCI*1e3),
		})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "adaptive repetitions per confidence target", Rows: rows})
	rep.Notes = append(rep.Notes,
		"clean experiments converge at the minimum repetitions for any target (cheap estimation); the escalating gather needs ever more repetitions as the target tightens, hitting the cap — the paper measures the irregular region with a fixed-repetition scan and reports escalation statistics instead of a mean")
	return rep, nil
}

// Scaling studies how the estimation procedures and the LMO accuracy
// scale with the cluster size: the experiment counts grow as O(n²)
// round-trips plus O(n³) one-to-two experiments, the paper's stated
// complexity, while the prediction accuracy stays flat.
func Scaling(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	full := cfg.Cluster
	sizes := []int{4, 6, 8, 12, 16}
	rows := [][]string{{"n", "experiments", "C(n,2)+3·C(n,3) ×2", "cost (parallel)", "LMO scatter err"}}
	rep := &Report{ID: "scaling", Title: "Estimation scaling with cluster size"}

	for _, n := range sizes {
		if n > full.N() {
			continue
		}
		sub := cfg
		sub.Cluster = full.Prefix(n)
		lmo, r, err := estimate.LMOX(sub.mpiConfig(), sub.Est)
		if err != nil {
			return nil, err
		}
		// Quick accuracy probe: linear scatter at one mid size.
		probe := sub
		probe.Sizes = []int{32 << 10}
		obs, err := Observe(probe, Scatter, mpi.Linear)
		if err != nil {
			return nil, err
		}
		pred := lmo.ScatterLinear(sub.Root, n, 32<<10)
		errPct := 100 * math.Abs(pred-obs.Mean[0]) / obs.Mean[0]
		expected := n*(n-1) + n*(n-1)*(n-2) // ×2 sizes: C(n,2)·2 + 3·C(n,3)·2
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(r.Experiments),
			fmt.Sprint(expected),
			r.Cost.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", errPct),
		})
		if r.Experiments != expected {
			return nil, fmt.Errorf("scaling: experiment count %d != expected %d at n=%d", r.Experiments, expected, n)
		}
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "LMO estimation vs cluster size", Rows: rows})
	rep.Notes = append(rep.Notes,
		"experiment counts follow the paper's complexity (C(n,2) round-trips + 3·C(n,3) one-to-two, each at two sizes); the parallel schedule keeps the cost growth tame and the prediction error does not degrade with n")
	return rep, nil
}
