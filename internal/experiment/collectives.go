package experiment

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/estimate"
	"repro/internal/mpi"
	"repro/internal/mpib"
)

// Collectives validates the paper's claim that an intuitive model can
// express "the execution time of any collective communication
// operation" as maxima and sums of the point-to-point parameters: the
// LMO tree predictions are checked against observations for binomial
// broadcast, binomial reduce and the binary/chain scatters — shapes
// the paper itself never measured.
func Collectives(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := cfg.Cluster.N()
	lmo, _, err := estimate.LMOX(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, err
	}

	type entry struct {
		name    string
		predict func(m int) float64
		observe func(r *mpi.Rank, m int) func()
	}
	entries := []entry{
		{
			"bcast (binomial)",
			func(m int) float64 { return lmo.BcastBinomial(cfg.Root, n, m) },
			func(r *mpi.Rank, m int) func() {
				return func() {
					var data []byte
					if r.Rank() == cfg.Root {
						data = make([]byte, m)
					}
					r.Bcast(cfg.Root, data)
				}
			},
		},
		{
			"reduce (binomial)",
			func(m int) float64 { return lmo.ReduceBinomial(cfg.Root, n, m) },
			func(r *mpi.Rank, m int) func() {
				op := func(a, b []byte) []byte { return a }
				block := make([]byte, m)
				return func() { r.Reduce(cfg.Root, block, op) }
			},
		},
		{
			"scatter (binary)",
			func(m int) float64 { return lmo.ScatterTree(collective.Binary(n, cfg.Root), m) },
			func(r *mpi.Rank, m int) func() {
				blocks := make([][]byte, n)
				for i := range blocks {
					blocks[i] = make([]byte, m)
				}
				return func() { r.Scatter(mpi.Binary, cfg.Root, blocks) }
			},
		},
		{
			"scatter (chain)",
			func(m int) float64 { return lmo.ScatterTree(collective.Chain(n, cfg.Root), m) },
			func(r *mpi.Rank, m int) func() {
				blocks := make([][]byte, n)
				for i := range blocks {
					blocks[i] = make([]byte, m)
				}
				return func() { r.Scatter(mpi.Chain, cfg.Root, blocks) }
			},
		},
		{
			"allgather (ring)",
			func(m int) float64 { return lmo.AllgatherRing(n, m) },
			func(r *mpi.Rank, m int) func() {
				block := make([]byte, m)
				return func() { r.Allgather(block) }
			},
		},
		{
			"alltoall (linear)",
			func(m int) float64 { return lmo.AlltoallLinear(n, m) },
			func(r *mpi.Rank, m int) func() {
				send := make([][]byte, n)
				for i := range send {
					send[i] = make([]byte, m)
				}
				return func() { r.Alltoall(send) }
			},
		},
	}

	rep := &Report{
		ID:    "collectives",
		Title: "Extension: LMO tree predictions across the collective zoo",
	}
	rows := [][]string{{"operation", "size", "observed (s)", "LMO predicted (s)", "rel.err"}}
	var worst float64
	for _, e := range entries {
		// 4 KB sits below every irregularity; 128 KB exercises the
		// serialized-ingress regime for the many-to-one patterns.
		for _, m := range []int{4 << 10, 128 << 10} {
			var observed float64
			_, err := mpi.Run(cfg.mpiConfig(), func(r *mpi.Rank) {
				fn := e.observe(r, m)
				meas := mpib.Measure(r, cfg.Root, mpib.MaxTiming,
					mpib.Options{MinReps: cfg.ObsReps, MaxReps: cfg.ObsReps}, fn)
				if r.Rank() == 0 {
					observed = meas.Mean
				}
			})
			if err != nil {
				return nil, err
			}
			pred := e.predict(m)
			rel := (pred - observed) / observed
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
			rows = append(rows, []string{
				e.name, fmt.Sprintf("%dK", m>>10),
				fmt.Sprintf("%.5f", observed), fmt.Sprintf("%.5f", pred),
				fmt.Sprintf("%.1f%%", 100*rel),
			})
		}
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "observation vs LMO tree prediction", Rows: rows})
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"worst relative error %.1f%% across operations the model was never fitted to — the separated tree recursion generalizes beyond scatter/gather", 100*worst))
	return rep, nil
}
