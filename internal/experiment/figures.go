package experiment

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/estimate"
	"repro/internal/mpi"
	"repro/internal/mpib"
	"repro/internal/optimize"
	"repro/internal/stats"
)

// Fig1 reproduces Figure 1: the four Hockney readings of linear
// scatter — homogeneous/heterogeneous × serial/parallel — against the
// observation. The serial readings are pessimistic, the parallel ones
// optimistic; neither matches.
func Fig1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	het, _, err := estimate.HetHockney(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, err
	}
	hom := het.Averaged()
	obs, err := Observe(cfg, Scatter, mpi.Linear)
	if err != nil {
		return nil, err
	}
	n := cfg.Cluster.N()
	rep := &Report{
		ID:     "fig1",
		Title:  fmt.Sprintf("Fig 1: linear scatter on the %d-node cluster — Hockney predictions vs observation", n),
		XLabel: "message size (bytes)",
		YLabel: "execution time (s)",
	}
	rep.Series = append(rep.Series,
		series("observed", obs.Sizes, obs.Mean),
		series("hom-Hockney serial", obs.Sizes, predict(obs.Sizes, func(m int) float64 { return hom.ScatterLinearSerial(n, m) })),
		series("hom-Hockney parallel", obs.Sizes, predict(obs.Sizes, func(m int) float64 { return hom.ScatterLinearParallel(n, m) })),
		series("het-Hockney serial", obs.Sizes, predict(obs.Sizes, func(m int) float64 { return het.ScatterLinearSerial(cfg.Root, m) })),
		series("het-Hockney parallel", obs.Sizes, predict(obs.Sizes, func(m int) float64 { return het.ScatterLinearParallel(cfg.Root, m) })),
	)
	serialErr := meanAbsRelError(obs.Mean, predict(obs.Sizes, func(m int) float64 { return het.ScatterLinearSerial(cfg.Root, m) }))
	parErr := meanAbsRelError(obs.Mean, predict(obs.Sizes, func(m int) float64 { return het.ScatterLinearParallel(cfg.Root, m) }))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("het-Hockney serial over-predicts (mean |rel.err| %.0f%%), parallel under-predicts (%.0f%%): the Hockney parameters cannot separate the root's serialized processing from the parallel transfers.", 100*serialErr, 100*parErr))
	return rep, nil
}

// Fig2 reproduces Figure 2: the binomial communication tree for 16
// processors with per-arc block counts.
func Fig2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := cfg.Cluster.N()
	tree := collective.Binomial(n, cfg.Root)
	rep := &Report{
		ID:    "fig2",
		Title: fmt.Sprintf("Fig 2: binomial communication tree for scatter/gather, %d processors", n),
	}
	rows := [][]string{{"rank", "parent", "depth", "blocks over incoming arc", "children"}}
	for r := 0; r < n; r++ {
		parent := "-"
		if tree.Parent[r] >= 0 {
			parent = fmt.Sprint(tree.Parent[r])
		}
		rows = append(rows, []string{
			fmt.Sprint(r), parent, fmt.Sprint(tree.Depth(r)),
			fmt.Sprint(tree.Blocks(r)), fmt.Sprint(tree.Children[r]),
		})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "arc block counts", Rows: rows})
	rep.Notes = append(rep.Notes, "tree rendering:\n"+tree.String())
	return rep, nil
}

// Fig3 reproduces Figure 3: homogeneous vs heterogeneous Hockney
// predictions of the binomial scatter against the observation — the
// heterogeneous recursion (eq 1) tracks the observation much better.
func Fig3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	het, _, err := estimate.HetHockney(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, err
	}
	hom := het.Averaged()
	obs, err := Observe(cfg, Scatter, mpi.Binomial)
	if err != nil {
		return nil, err
	}
	n := cfg.Cluster.N()
	rep := &Report{
		ID:     "fig3",
		Title:  "Fig 3: binomial scatter — homogeneous vs heterogeneous Hockney",
		XLabel: "message size (bytes)",
		YLabel: "execution time (s)",
	}
	homPred := predict(obs.Sizes, func(m int) float64 { return hom.ScatterBinomial(cfg.Root, n, m) })
	hetPred := predict(obs.Sizes, func(m int) float64 { return het.ScatterBinomial(cfg.Root, n, m) })
	rep.Series = append(rep.Series,
		series("observed", obs.Sizes, obs.Mean),
		series("hom-Hockney (eq 3)", obs.Sizes, homPred),
		series("het-Hockney (eq 1)", obs.Sizes, hetPred),
	)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"mean |rel.err|: hom %.0f%%, het %.0f%% — the recursive heterogeneous formula approximates the binomial scatter much better (paper §II).",
		100*meanAbsRelError(obs.Mean, homPred), 100*meanAbsRelError(obs.Mean, hetPred)))
	return rep, nil
}

// Fig4 reproduces Figure 4: linear scatter predicted by every model —
// het-Hockney, LogGP, PLogP and LMO (eq 4) — against the observation
// with its 64 KB leap.
func Fig4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ms, err := EstimateAll(cfg)
	if err != nil {
		return nil, err
	}
	obs, err := Observe(cfg, Scatter, mpi.Linear)
	if err != nil {
		return nil, err
	}
	n := cfg.Cluster.N()
	rep := &Report{
		ID:     "fig4",
		Title:  "Fig 4: linear scatter — traditional models vs LMO vs observation",
		XLabel: "message size (bytes)",
		YLabel: "execution time (s)",
	}
	preds := []struct {
		name string
		f    func(m int) float64
	}{
		{"het-Hockney", func(m int) float64 { return ms.Het.ScatterLinear(cfg.Root, n, m) }},
		{"LogGP", func(m int) float64 { return ms.LogGP.ScatterLinear(cfg.Root, n, m) }},
		{"PLogP", func(m int) float64 { return ms.PLogP.ScatterLinear(cfg.Root, n, m) }},
		{"LMO (eq 4)", func(m int) float64 { return ms.LMO.ScatterLinear(cfg.Root, n, m) }},
	}
	rep.Series = append(rep.Series, series("observed", obs.Sizes, obs.Mean))
	rows := [][]string{{"model", "mean |rel.err|"}}
	for _, p := range preds {
		ys := predict(obs.Sizes, p.f)
		rep.Series = append(rep.Series, series(p.name, obs.Sizes, ys))
		rows = append(rows, []string{p.name, fmt.Sprintf("%.1f%%", 100*meanAbsRelError(obs.Mean, ys))})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "prediction accuracy (linear scatter)", Rows: rows})
	return rep, nil
}

// Fig5 reproduces Figure 5: linear gather. Only the LMO model follows
// the two slopes (parallel below M1, serialized above M2) and brackets
// the escalation band in between.
func Fig5(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ms, err := EstimateAll(cfg)
	if err != nil {
		return nil, err
	}
	obs, err := Observe(cfg, Gather, mpi.Linear)
	if err != nil {
		return nil, err
	}
	n := cfg.Cluster.N()
	rep := &Report{
		ID:     "fig5",
		Title:  "Fig 5: linear gather — traditional models vs LMO vs observation",
		XLabel: "message size (bytes)",
		YLabel: "execution time (s)",
	}
	rep.Series = append(rep.Series,
		series("observed (mean)", obs.Sizes, obs.Mean),
		series("observed (worst rep)", obs.Sizes, obs.Max),
	)
	rows := [][]string{{"model", "mean |rel.err| vs mean obs"}}
	preds := []struct {
		name string
		f    func(m int) float64
	}{
		{"het-Hockney", func(m int) float64 { return ms.Het.GatherLinear(cfg.Root, n, m) }},
		{"LogGP", func(m int) float64 { return ms.LogGP.GatherLinear(cfg.Root, n, m) }},
		{"PLogP", func(m int) float64 { return ms.PLogP.GatherLinear(cfg.Root, n, m) }},
		{"LMO (eq 5)", func(m int) float64 { return ms.LMO.GatherLinear(cfg.Root, n, m) }},
	}
	for _, p := range preds {
		ys := predict(obs.Sizes, p.f)
		rep.Series = append(rep.Series, series(p.name, obs.Sizes, ys))
		rows = append(rows, []string{p.name, fmt.Sprintf("%.1f%%", 100*meanAbsRelError(obs.Mean, ys))})
	}
	lo := predict(obs.Sizes, func(m int) float64 { l, _ := ms.LMO.GatherLinearBand(cfg.Root, n, m); return l })
	hi := predict(obs.Sizes, func(m int) float64 { _, h := ms.LMO.GatherLinearBand(cfg.Root, n, m); return h })
	rep.Series = append(rep.Series,
		series("LMO band low", obs.Sizes, lo),
		series("LMO band high", obs.Sizes, hi),
	)
	rep.Tables = append(rep.Tables, TableBlock{Caption: "prediction accuracy (linear gather)", Rows: rows})
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"LMO empirical parameters: M1=%d B, M2=%d B, escalation modes %v (per-op probability %.2f→%.2f)",
		ms.LMO.Gather.M1, ms.LMO.Gather.M2, ms.LMO.Gather.EscModes, ms.LMO.Gather.ProbLow, ms.LMO.Gather.ProbHigh))
	return rep, nil
}

// Fig6 reproduces Figure 6: for 100 KB ≤ M ≤ 200 KB, the Hockney model
// mispredicts that binomial scatter beats linear, while the LMO
// prediction matches the observed ordering.
func Fig6(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	cfg.Sizes = []int{100 << 10, 120 << 10, 140 << 10, 160 << 10, 180 << 10, 200 << 10}
	ms, err := EstimateAll(cfg)
	if err != nil {
		return nil, err
	}
	obsLin, err := Observe(cfg, Scatter, mpi.Linear)
	if err != nil {
		return nil, err
	}
	obsBin, err := Observe(cfg, Scatter, mpi.Binomial)
	if err != nil {
		return nil, err
	}
	n := cfg.Cluster.N()
	rep := &Report{
		ID:     "fig6",
		Title:  "Fig 6: linear vs binomial scatter, 100–200 KB — algorithm selection",
		XLabel: "message size (bytes)",
		YLabel: "execution time (s)",
	}
	rep.Series = append(rep.Series,
		series("observed linear", obsLin.Sizes, obsLin.Mean),
		series("observed binomial", obsBin.Sizes, obsBin.Mean),
		series("het-Hockney linear", cfg.Sizes, predict(cfg.Sizes, func(m int) float64 { return ms.Het.ScatterLinear(cfg.Root, n, m) })),
		series("het-Hockney binomial", cfg.Sizes, predict(cfg.Sizes, func(m int) float64 { return ms.Het.ScatterBinomial(cfg.Root, n, m) })),
		series("LMO linear", cfg.Sizes, predict(cfg.Sizes, func(m int) float64 { return ms.LMO.ScatterLinear(cfg.Root, n, m) })),
		series("LMO binomial", cfg.Sizes, predict(cfg.Sizes, func(m int) float64 { return ms.LMO.ScatterBinomial(cfg.Root, n, m) })),
	)
	rows := [][]string{{"size", "observed faster", "Hockney picks", "LMO picks"}}
	hockneyRight, lmoRight := 0, 0
	for i, m := range cfg.Sizes {
		observed := mpi.Linear
		if obsBin.Mean[i] < obsLin.Mean[i] {
			observed = mpi.Binomial
		}
		hPick := optimize.SelectScatterAlg(ms.Het, cfg.Root, n, m)
		lPick := optimize.SelectScatterAlg(ms.LMO, cfg.Root, n, m)
		if hPick == observed {
			hockneyRight++
		}
		if lPick == observed {
			lmoRight++
		}
		rows = append(rows, []string{fmt.Sprintf("%dK", m>>10), observed.String(), hPick.String(), lPick.String()})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "algorithm choices", Rows: rows})
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"correct algorithm decisions: Hockney %d/%d, LMO %d/%d (paper: Hockney switches in favour of binomial, wrongly; LMO decides correctly)",
		hockneyRight, len(cfg.Sizes), lmoRight, len(cfg.Sizes)))
	return rep, nil
}

// Fig7 reproduces Figure 7: the LMO-guided optimization of linear
// gather — splitting medium messages into sub-M1 segments — against
// the native gather inside the irregularity region.
func Fig7(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	// Medium sizes inside the LAM irregular region.
	cfg.Sizes = []int{8 << 10, 16 << 10, 24 << 10, 32 << 10, 40 << 10, 48 << 10, 56 << 10}
	irr, _, err := estimate.DetectGatherIrregularity(
		cfg.mpiConfig(), cfg.Root, estimate.DefaultScanSizes(), cfg.ScanReps, cfg.Est)
	if err != nil {
		return nil, err
	}
	if !irr.Valid() {
		return nil, fmt.Errorf("fig7: no irregularity region detected; nothing to optimize")
	}

	native, err := Observe(cfg, Gather, mpi.Linear)
	if err != nil {
		return nil, err
	}
	optimized := Observation{Sizes: cfg.Sizes,
		Mean: make([]float64, len(cfg.Sizes)),
		Max:  make([]float64, len(cfg.Sizes)),
		Min:  make([]float64, len(cfg.Sizes))}
	_, err = mpi.Run(cfg.mpiConfig(), func(r *mpi.Rank) {
		for si, m := range cfg.Sizes {
			block := make([]byte, m)
			meas := measureFixed(r, cfg, func() { optimize.OptimizedGather(r, cfg.Root, block, irr) })
			if r.Rank() == 0 {
				optimized.Mean[si] = meas.mean
				optimized.Max[si] = meas.max
				optimized.Min[si] = meas.min
			}
		}
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "fig7",
		Title:  "Fig 7: LMO model-based optimization of linear gather",
		XLabel: "message size (bytes)",
		YLabel: "execution time (s)",
	}
	rep.Series = append(rep.Series,
		series("native gather (mean)", native.Sizes, native.Mean),
		series("optimized gather (mean)", optimized.Sizes, optimized.Mean),
	)
	rows := [][]string{{"size", "native (s)", "optimized (s)", "speedup"}}
	var totalSpeed float64
	cnt := 0
	for i, m := range cfg.Sizes {
		sp := 0.0
		if optimized.Mean[i] > 0 {
			sp = native.Mean[i] / optimized.Mean[i]
		}
		if optimize.ShouldSplitGather(irr, m) {
			totalSpeed += sp
			cnt++
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dK", m>>10),
			fmt.Sprintf("%.4f", native.Mean[i]),
			fmt.Sprintf("%.4f", optimized.Mean[i]),
			fmt.Sprintf("%.1f×", sp),
		})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "native vs optimized gather", Rows: rows})
	if cnt > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"mean speedup inside the irregular region: %.1f× (paper reports ~10×); segment size %d B (M1)",
			totalSpeed/float64(cnt), optimize.GatherSegment(irr)))
	}
	return rep, nil
}

// fixedMeas is a fixed-repetition max-timing measurement summary.
type fixedMeas struct{ mean, max, min float64 }

// measureFixed measures op with cfg.ObsReps repetitions and max timing.
func measureFixed(r *mpi.Rank, cfg Config, op func()) fixedMeas {
	meas := mpib.Measure(r, cfg.Root, mpib.MaxTiming,
		mpib.Options{MinReps: cfg.ObsReps, MaxReps: cfg.ObsReps}, op)
	return fixedMeas{mean: meas.Mean, max: stats.Max(meas.Samples), min: stats.Min(meas.Samples)}
}
