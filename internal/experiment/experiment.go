// Package experiment reproduces the paper's evaluation: one runner per
// figure and table, producing named observation/prediction series and
// text tables. The runners estimate the models from communication
// experiments (never from the simulator's ground truth), observe the
// collectives on the simulated cluster, and lay both side by side,
// exactly as the paper's §V plots do.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/mpib"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// Config parameterizes a reproduction run.
type Config struct {
	Cluster  *cluster.Cluster    // the machine (default: Table I's 16 nodes)
	Profile  *cluster.TCPProfile // MPI implementation profile (default: LAM)
	Seed     int64               // TCP randomness seed
	Root     int                 // collective root
	Sizes    []int               // message-size sweep for the figures
	ObsReps  int                 // repetitions per observation point
	Est      estimate.Options    // estimation options (parallel schedules by default)
	ScanReps int                 // repetitions per size in the irregularity scan
	Faults   *faults.Plan        // fault plan injected into every run (nil = none)
}

// Default returns the paper's setting: the 16-node heterogeneous
// cluster of Table I under LAM 7.1.3.
func Default() Config {
	return Config{
		Cluster:  cluster.Table1(),
		Profile:  cluster.LAM(),
		Seed:     1,
		Root:     0,
		Sizes:    DefaultSizes(),
		ObsReps:  10,
		Est:      estimate.Options{Parallel: true},
		ScanReps: 20,
	}
}

// DefaultSizes is the figures' message-size sweep: 1 KB – 200 KB.
func DefaultSizes() []int {
	return []int{
		1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 24 << 10, 32 << 10,
		48 << 10, 64 << 10, 80 << 10, 96 << 10, 128 << 10, 160 << 10, 200 << 10,
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Cluster == nil {
		c.Cluster = cluster.Table1()
	}
	if c.Profile == nil {
		c.Profile = cluster.LAM()
	}
	if len(c.Sizes) == 0 {
		c.Sizes = DefaultSizes()
	}
	if c.ObsReps == 0 {
		c.ObsReps = 10
	}
	if c.ScanReps == 0 {
		c.ScanReps = 20
	}
	return c
}

func (c Config) mpiConfig() mpi.Config {
	return mpi.Config{Cluster: c.Cluster, Profile: c.Profile, Seed: c.Seed, Faults: c.Faults}
}

// TableBlock is a captioned text table inside a report.
type TableBlock struct {
	Caption string
	Rows    [][]string
}

// Report is the result of one experiment runner.
type Report struct {
	ID     string // "fig1" … "fig7", "table1", …
	Title  string
	XLabel string
	YLabel string
	Series []textplot.Series
	Tables []TableBlock
	Notes  []string
}

// ModelSet bundles the estimated models a figure compares.
type ModelSet struct {
	Hom   *models.Hockney
	Het   *models.HetHockney
	LogP  *models.LogP
	LogGP *models.LogGP
	PLogP *models.PLogP
	LMO   *models.LMOX

	EstCosts map[string]time.Duration // estimation cost per model family
}

// EstimateAll runs every estimator (with the configured schedule) and
// attaches the detected gather irregularity to the LMO model.
func EstimateAll(cfg Config) (*ModelSet, error) {
	cfg = cfg.withDefaults()
	ms := &ModelSet{EstCosts: map[string]time.Duration{}}

	het, repHet, err := estimate.HetHockney(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, fmt.Errorf("het-Hockney estimation: %w", err)
	}
	ms.Het = het
	ms.Hom = het.Averaged()
	ms.EstCosts["hockney"] = repHet.Cost

	logp, loggp, repLG, err := estimate.LogPLogGP(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, fmt.Errorf("LogP/LogGP estimation: %w", err)
	}
	ms.LogP, ms.LogGP = logp, loggp
	ms.EstCosts["logp"] = repLG.Cost

	plogp, repPL, err := estimate.PLogP(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, fmt.Errorf("PLogP estimation: %w", err)
	}
	ms.PLogP = plogp
	ms.EstCosts["plogp"] = repPL.Cost

	lmo, repLMO, err := estimate.LMOX(cfg.mpiConfig(), cfg.Est)
	if err != nil {
		return nil, fmt.Errorf("LMO estimation: %w", err)
	}
	ms.EstCosts["lmo"] = repLMO.Cost

	irr, repIrr, err := estimate.DetectGatherIrregularity(
		cfg.mpiConfig(), cfg.Root, estimate.DefaultScanSizes(), cfg.ScanReps, cfg.Est)
	if err != nil {
		return nil, fmt.Errorf("irregularity detection: %w", err)
	}
	lmo.Gather = irr
	ms.LMO = lmo
	ms.EstCosts["irregularity-scan"] = repIrr.Cost
	return ms, nil
}

// CollectiveOp selects the observed operation.
type CollectiveOp int

// The collectives the figures observe.
const (
	Scatter CollectiveOp = iota
	Gather
)

// String returns the op name.
func (o CollectiveOp) String() string {
	if o == Scatter {
		return "scatter"
	}
	return "gather"
}

// Observation is one observed size sweep.
type Observation struct {
	Sizes []int
	Mean  []float64 // mean over repetitions (seconds)
	Max   []float64 // worst repetition
	Min   []float64 // best repetition
}

// Observe measures a collective across cfg.Sizes with fixed
// repetitions and max-timing (the makespan the paper's plots show).
func Observe(cfg Config, op CollectiveOp, alg mpi.Alg) (Observation, error) {
	cfg = cfg.withDefaults()
	obs := Observation{Sizes: cfg.Sizes}
	obs.Mean = make([]float64, len(cfg.Sizes))
	obs.Max = make([]float64, len(cfg.Sizes))
	obs.Min = make([]float64, len(cfg.Sizes))
	n := cfg.Cluster.N()
	_, err := mpi.Run(cfg.mpiConfig(), func(r *mpi.Rank) {
		for si, m := range cfg.Sizes {
			var fn func()
			switch op {
			case Scatter:
				blocks := make([][]byte, n)
				for i := range blocks {
					blocks[i] = make([]byte, m)
				}
				fn = func() { r.Scatter(alg, cfg.Root, blocks) }
			default:
				block := make([]byte, m)
				fn = func() { r.Gather(alg, cfg.Root, block) }
			}
			meas := mpib.Measure(r, cfg.Root, mpib.MaxTiming,
				mpib.Options{MinReps: cfg.ObsReps, MaxReps: cfg.ObsReps}, fn)
			if r.Rank() == 0 {
				obs.Mean[si] = meas.Mean
				obs.Max[si] = stats.Max(meas.Samples)
				obs.Min[si] = stats.Min(meas.Samples)
			}
		}
	})
	return obs, err
}

// series builds a textplot series from a size sweep and y values.
func series(name string, sizes []int, ys []float64) textplot.Series {
	s := textplot.Series{Name: name}
	for i, m := range sizes {
		s.Points = append(s.Points, textplot.Point{X: float64(m), Y: ys[i]})
	}
	return s
}

// predict sweeps a prediction function over sizes.
func predict(sizes []int, f func(m int) float64) []float64 {
	out := make([]float64, len(sizes))
	for i, m := range sizes {
		out[i] = f(m)
	}
	return out
}

// meanAbsRelError compares a prediction sweep to an observation sweep.
func meanAbsRelError(obs, pred []float64) float64 {
	if len(obs) == 0 {
		return 0
	}
	s := 0.0
	for i := range obs {
		if obs[i] != 0 {
			d := (pred[i] - obs[i]) / obs[i]
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s / float64(len(obs))
}
