package experiment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/textplot"
)

// Runner is a named experiment entry point.
type Runner struct {
	ID    string
	Brief string
	Run   func(Config) (*Report, error)
}

// Runners lists every reproduction experiment, in paper order.
func Runners() []Runner {
	return []Runner{
		{"table1", "Table I: cluster specification", Table1},
		{"fig1", "Fig 1: linear scatter, Hockney variants vs observation", Fig1},
		{"fig2", "Fig 2: binomial communication tree", Fig2},
		{"fig3", "Fig 3: binomial scatter, hom vs het Hockney", Fig3},
		{"table2", "Table II: linear scatter/gather predictions per model", Table2},
		{"fig4", "Fig 4: linear scatter, all models vs observation", Fig4},
		{"fig5", "Fig 5: linear gather, all models vs observation", Fig5},
		{"fig6", "Fig 6: linear vs binomial scatter, algorithm selection", Fig6},
		{"fig7", "Fig 7: LMO-guided gather optimization", Fig7},
		{"estcost", "§IV: serial vs parallel estimation cost", EstCost},
		{"irreg", "§III: irregularity thresholds per MPI implementation", Irreg},
		{"ablation", "Ablations: 5- vs 6-parameter LMO; TCP machinery on/off", Ablation},
		{"algzoo", "Extension: four scatter algorithms, observed vs LMO-selected", AlgZoo},
		{"timing", "§IV: root-side vs makespan timing methods", Timing},
		{"precision", "§IV: confidence target vs estimation cost/accuracy", Precision},
		{"scaling", "Estimation scaling with cluster size", Scaling},
		{"collectives", "Extension: LMO tree predictions for bcast/reduce/binary/chain", Collectives},
		{"transfer", "§III: LAM-estimated model applied to an MPICH cluster", Transfer},
		{"faults", "Robustness: LMO estimation under a seeded fault plan", FaultsExp},
		{"topo", "Extension: multi-switch topologies, grouped LMO per tier", TopoExp},
	}
}

// Lookup returns the runner with the given id, or nil.
func Lookup(id string) *Runner {
	for _, r := range Runners() {
		if r.ID == id {
			r := r
			return &r
		}
	}
	return nil
}

// Render writes the report as text: title, chart (when there are
// series), tables and notes.
func Render(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "== %s ==\n\n", rep.Title)
	if len(rep.Series) > 0 {
		fmt.Fprintln(w, textplot.Chart("", rep.XLabel, rep.YLabel, rep.Series, 72, 20))
	}
	for _, tb := range rep.Tables {
		if tb.Caption != "" {
			fmt.Fprintf(w, "-- %s --\n", tb.Caption)
		}
		fmt.Fprintln(w, textplot.Table(tb.Rows))
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// WriteCSV writes the report's series as CSV: one x column and one
// column per series (points are matched by position).
func WriteCSV(w io.Writer, rep *Report) error {
	if len(rep.Series) == 0 {
		return nil
	}
	header := []string{"x"}
	for _, s := range rep.Series {
		header = append(header, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	maxLen := 0
	for _, s := range rep.Series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(rep.Series)+1)
		x := ""
		for _, s := range rep.Series {
			if i < len(s.Points) {
				x = fmt.Sprintf("%g", s.Points[i].X)
				break
			}
		}
		row = append(row, x)
		for _, s := range rep.Series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%g", s.Points[i].Y))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
