package experiment

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/mpi"
	"repro/internal/mpib"
	"repro/internal/topo"
)

// TopoExp exercises the hierarchical-topology extension: on a two-tier
// rack cluster, a fat-tree and a WAN-joined multi-cluster it runs the
// grouped LMO estimation (logical-group detection plus per-group and
// per-link-class experiments), then scores the collapsed model's
// round-trip predictions against the simulation, one representative
// node pair per route tier.
func TopoExp(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:    "topo",
		Title: "Extension: multi-switch topologies, grouped LMO vs simulation",
	}
	sizes := []int{4 << 10, 64 << 10}
	for _, spec := range []string{"twotier:4x4", "fattree:4", "multicluster:2x4"} {
		t, err := topo.ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		cl := cluster.FromTopology(t, cluster.NodeSpec{}, cluster.LinkSpec{})
		mcfg := mpi.Config{Cluster: cl, Profile: cfg.Profile, Seed: cfg.Seed, Faults: cfg.Faults}
		model, groups, estRep, err := estimate.LMOGrouped(mcfg, cfg.Est)
		if err != nil {
			return nil, fmt.Errorf("%s: grouped estimation: %w", spec, err)
		}

		// One representative pair per route tier, all anchored at node 0
		// (every tier of these topologies is reachable from it).
		type tier struct {
			pair [2]int
			name string
		}
		var tiers []tier
		seen := map[[2]int]bool{}
		for j := 1; j < cl.N(); j++ {
			rt := t.Route(0, j)
			key := [2]int{int(rt.MaxClass), len(rt.Hops)}
			if seen[key] {
				continue
			}
			seen[key] = true
			name := "same switch"
			if len(rt.Hops) > 0 {
				name = fmt.Sprintf("%d %s hops", len(rt.Hops), rt.MaxClass)
			}
			tiers = append(tiers, tier{[2]int{0, j}, name})
		}

		rows := [][]string{{"tier", "pair", "size", "predicted RTT", "simulated RTT", "error"}}
		for _, ti := range tiers {
			a, b := ti.pair[0], ti.pair[1]
			for _, m := range sizes {
				var meas mpib.Measurement
				_, err := mpi.Run(mcfg, func(r *mpi.Rank) {
					meas = mpib.Measure(r, a, mpib.RootTiming, cfg.Est.Mpib, func() {
						switch r.Rank() {
						case a:
							r.Send(b, 0, make([]byte, m))
							r.Recv(b, 0)
						case b:
							r.Recv(a, 0)
							r.Send(a, 0, make([]byte, m))
						}
					})
				})
				if err != nil {
					return nil, fmt.Errorf("%s: observing pair %d-%d: %w", spec, a, b, err)
				}
				pred := model.P2P(a, b, m) + model.P2P(b, a, m)
				obs := meas.Mean
				rows = append(rows, []string{
					ti.name,
					fmt.Sprintf("%d-%d", a, b),
					fmt.Sprintf("%dK", m>>10),
					fmt.Sprintf("%.0fµs", 1e6*pred),
					fmt.Sprintf("%.0fµs", 1e6*obs),
					fmt.Sprintf("%+.1f%%", 100*(pred-obs)/obs),
				})
			}
		}
		rep.Tables = append(rep.Tables, TableBlock{
			Caption: fmt.Sprintf("%s (%d nodes): per-tier round-trip accuracy", spec, cl.N()),
			Rows:    rows,
		})
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: %d logical groups detected, %d experiments, %s virtual estimation cost",
			spec, groups.NumGroups(), estRep.Experiments,
			estRep.Cost.Round(time.Millisecond)))
	}
	rep.Notes = append(rep.Notes,
		"grouped estimation measures one triplet per logical group and one pair per inter-group link class,",
		"collapsing the O(n²·triplets) full procedure; at fat-tree k=16 (1024 nodes) it finishes in seconds.",
		"the 64K undershoot is uniform across tiers (same-switch included): 64K crosses the profile's",
		"escalation threshold, which the linear LMO (estimated at 32K) cannot follow — the Figs 4/5 gap.")
	return rep, nil
}
