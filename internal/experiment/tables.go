package experiment

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/estimate"
)

// Table1 reproduces Table I: the specification of the 16-node
// heterogeneous cluster, plus the synthetic ground-truth delays the
// simulator substitutes for the hardware.
func Table1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "table1", Title: "Table I: specification of the heterogeneous cluster"}
	rows := [][]string{{"node", "model", "OS", "C_i (ground truth)", "t_i (ground truth)"}}
	for _, nd := range cfg.Cluster.Nodes {
		rows = append(rows, []string{
			nd.Name, nd.Model, nd.OS,
			nd.C.String(), fmt.Sprintf("%.2g s/B", nd.T),
		})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "nodes", Rows: rows})
	l := cfg.Cluster.Links[0][1]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"single switch; link ground truth: L=%v, β=%.3g B/s; TCP profile %q (M1=%d, M2=%d, leap at %d)",
		l.L, l.Beta, cfg.Profile.Name, cfg.Profile.M1, cfg.Profile.M2, cfg.Profile.LeapAt))
	return rep, nil
}

// Table2 reproduces Table II: the linear scatter and gather predictions
// of each model, rendered symbolically (the paper's formulas) and
// evaluated numerically at sample sizes from the estimated parameters.
func Table2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ms, err := EstimateAll(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Cluster.N()
	rep := &Report{ID: "table2", Title: "Table II: prediction of the execution time of linear scatter and gather"}

	formulas := [][]string{
		{"model", "linear scatter", "linear gather"},
		{"het-Hockney", "Σ_{i≠r}(α_ri + β_ri·M)", "same as scatter"},
		{"LogGP", "L + 2o + (n-1)(M-1)G + (n-2)g", "same as scatter"},
		{"PLogP", "L + (n-1)·g(M)", "same as scatter"},
		{"LMO", "(n-1)(C_r+M·t_r) + max_i(L_ri + C_i + M(1/β_ri + t_i))",
			"(n-1)(C_r+M·t_r) + {max_i(…) for M<M1; Σ_i(…) for M>M2}"},
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "formulas (paper Table II)", Rows: formulas})

	sampleSizes := []int{1 << 10, 32 << 10, 128 << 10}
	rows := [][]string{{"model"}}
	for _, m := range sampleSizes {
		rows[0] = append(rows[0], fmt.Sprintf("scatter@%dK", m>>10), fmt.Sprintf("gather@%dK", m>>10))
	}
	type entry struct {
		name    string
		scatter func(m int) float64
		gather  func(m int) float64
	}
	entries := []entry{
		{"het-Hockney",
			func(m int) float64 { return ms.Het.ScatterLinear(cfg.Root, n, m) },
			func(m int) float64 { return ms.Het.GatherLinear(cfg.Root, n, m) }},
		{"LogGP",
			func(m int) float64 { return ms.LogGP.ScatterLinear(cfg.Root, n, m) },
			func(m int) float64 { return ms.LogGP.GatherLinear(cfg.Root, n, m) }},
		{"PLogP",
			func(m int) float64 { return ms.PLogP.ScatterLinear(cfg.Root, n, m) },
			func(m int) float64 { return ms.PLogP.GatherLinear(cfg.Root, n, m) }},
		{"LMO",
			func(m int) float64 { return ms.LMO.ScatterLinear(cfg.Root, n, m) },
			func(m int) float64 { return ms.LMO.GatherLinear(cfg.Root, n, m) }},
	}
	for _, e := range entries {
		row := []string{e.name}
		for _, m := range sampleSizes {
			row = append(row, fmt.Sprintf("%.4fs", e.scatter(m)), fmt.Sprintf("%.4fs", e.gather(m)))
		}
		rows = append(rows, row)
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "numeric predictions (estimated parameters)", Rows: rows})
	rep.Notes = append(rep.Notes,
		"only the LMO model distinguishes gather from scatter: above M2 the gather prediction is steeper (sum instead of max), matching the serialized root ingress")
	return rep, nil
}

// EstCost reproduces the §IV estimation-cost result: serial vs parallel
// estimation of the heterogeneous Hockney model on the switched
// cluster gives identical parameters at a fraction of the time (the
// paper measured 16 s vs 5 s), and reports the LMO estimation cost.
func EstCost(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	serialOpt := cfg.Est
	serialOpt.Parallel = false
	parallelOpt := cfg.Est
	parallelOpt.Parallel = true

	hetS, repS, err := estimate.HetHockney(cfg.mpiConfig(), serialOpt)
	if err != nil {
		return nil, err
	}
	hetP, repP, err := estimate.HetHockney(cfg.mpiConfig(), parallelOpt)
	if err != nil {
		return nil, err
	}
	_, repLMO, err := estimate.LMOX(cfg.mpiConfig(), parallelOpt)
	if err != nil {
		return nil, err
	}

	// Largest relative parameter difference between the two schedules.
	maxDiff := 0.0
	n := cfg.Cluster.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if d := relDiff(hetS.Alpha[i][j], hetP.Alpha[i][j]); d > maxDiff {
				maxDiff = d
			}
			if d := relDiff(hetS.Beta[i][j], hetP.Beta[i][j]); d > maxDiff {
				maxDiff = d
			}
		}
	}

	rep := &Report{ID: "estcost", Title: "§IV: cost of parameter estimation, serial vs parallel schedules"}
	rows := [][]string{
		{"procedure", "experiments", "repetitions", "virtual cost"},
		{"het-Hockney serial", fmt.Sprint(repS.Experiments), fmt.Sprint(repS.Repetitions), repS.Cost.Round(time.Millisecond).String()},
		{"het-Hockney parallel", fmt.Sprint(repP.Experiments), fmt.Sprint(repP.Repetitions), repP.Cost.Round(time.Millisecond).String()},
		{"LMO parallel", fmt.Sprint(repLMO.Experiments), fmt.Sprint(repLMO.Repetitions), repLMO.Cost.Round(time.Millisecond).String()},
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "estimation cost", Rows: rows})
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("parallel speedup %.1f× with max parameter deviation %.2f%% (paper: 16s → 5s, same values)",
			float64(repS.Cost)/float64(repP.Cost), 100*maxDiff))
	return rep, nil
}

// Irreg reproduces the §III observation that the irregularity
// thresholds are implementation-specific: LAM 7.1.3 shows M1≈4 KB,
// M2≈65 KB while MPICH 1.2.7 shows M1≈3 KB, M2≈125 KB.
func Irreg(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "irreg", Title: "§III: gather irregularity thresholds per MPI implementation"}
	rows := [][]string{{"profile", "ground truth M1/M2", "detected M1/M2", "dominant escalations"}}
	for _, prof := range []*cluster.TCPProfile{cluster.LAM(), cluster.MPICH()} {
		c := cfg
		c.Profile = prof
		g, _, err := estimate.DetectGatherIrregularity(
			c.mpiConfig(), c.Root, estimate.DefaultScanSizes(), c.ScanReps, c.Est)
		if err != nil {
			return nil, err
		}
		modes := "none"
		if len(g.EscModes) > 0 {
			modes = ""
			for i, md := range g.EscModes {
				if i > 0 {
					modes += ", "
				}
				modes += fmt.Sprintf("%.0fms×%d", md.Value*1000, md.Count)
				if i == 2 {
					break
				}
			}
		}
		rows = append(rows, []string{
			prof.Name,
			fmt.Sprintf("%dK/%dK", prof.M1>>10, prof.M2>>10),
			fmt.Sprintf("%dK/%dK", g.M1>>10, g.M2>>10),
			modes,
		})
	}
	rep.Tables = append(rep.Tables, TableBlock{Caption: "detected irregularity regions", Rows: rows})
	return rep, nil
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	den := a
	if den < 0 {
		den = -den
	}
	if den == 0 {
		return 1
	}
	return d / den
}
