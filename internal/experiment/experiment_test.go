package experiment

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/mpi"
	"repro/internal/textplot"
)

// smallCfg is a reduced 8-node heterogeneous configuration keeping the
// runners fast in tests while preserving the phenomena (heterogeneity,
// LAM irregularities).
func smallCfg() Config {
	// The Table 1 prefix keeps the full cluster's arrangement: slow
	// Opterons/Celeron at binomial leaf positions (1, 3, 5), fast
	// processors on the relay chain 0→4→6→7.
	return Config{
		Cluster:  cluster.Table1().Prefix(8),
		Profile:  cluster.LAM(),
		Seed:     7,
		Root:     0,
		Sizes:    []int{1 << 10, 8 << 10, 32 << 10, 64 << 10, 128 << 10, 200 << 10},
		ObsReps:  6,
		Est:      estimate.Options{Parallel: true},
		ScanReps: 12,
	}
}

func TestFig1ObservationBetweenSerialAndParallel(t *testing.T) {
	rep, err := Fig1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) []float64 {
		for _, s := range rep.Series {
			if s.Name == name {
				ys := make([]float64, len(s.Points))
				for i, p := range s.Points {
					ys[i] = p.Y
				}
				return ys
			}
		}
		t.Fatalf("series %q missing", name)
		return nil
	}
	obs := get("observed")
	ser := get("het-Hockney serial")
	par := get("het-Hockney parallel")
	// The paper's point: serial is pessimistic, parallel optimistic.
	for i := range obs {
		if !(par[i] < obs[i] && obs[i] < ser[i]) {
			t.Fatalf("point %d: want parallel (%v) < observed (%v) < serial (%v)", i, par[i], obs[i], ser[i])
		}
	}
	if len(rep.Notes) == 0 {
		t.Fatal("fig1 should carry a note")
	}
}

func TestFig2TreeTable(t *testing.T) {
	rep, err := Fig2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 9 {
		t.Fatalf("fig2 table shape: %+v", rep.Tables)
	}
}

func TestFig3HetBeatsHom(t *testing.T) {
	cfg := smallCfg()
	rep, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The note embeds the errors; recompute from series instead.
	var obs, hom, het []float64
	for _, s := range rep.Series {
		ys := make([]float64, len(s.Points))
		for i, p := range s.Points {
			ys[i] = p.Y
		}
		switch s.Name {
		case "observed":
			obs = ys
		case "hom-Hockney (eq 3)":
			hom = ys
		case "het-Hockney (eq 1)":
			het = ys
		}
	}
	if meanAbsRelError(obs, het) >= meanAbsRelError(obs, hom) {
		t.Fatalf("het (%v) should beat hom (%v) on binomial scatter",
			meanAbsRelError(obs, het), meanAbsRelError(obs, hom))
	}
}

func TestFig4LMOMostAccurate(t *testing.T) {
	rep, err := Fig4(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	errs := map[string]float64{}
	var obs []float64
	for _, s := range rep.Series {
		if s.Name == "observed" {
			for _, p := range s.Points {
				obs = append(obs, p.Y)
			}
		}
	}
	for _, s := range rep.Series {
		if s.Name == "observed" {
			continue
		}
		var ys []float64
		for _, p := range s.Points {
			ys = append(ys, p.Y)
		}
		errs[s.Name] = meanAbsRelError(obs, ys)
	}
	lmo := errs["LMO (eq 4)"]
	if lmo >= errs["het-Hockney"] || lmo >= errs["LogGP"] {
		t.Fatalf("LMO scatter error %v should beat het-Hockney %v and LogGP %v",
			lmo, errs["het-Hockney"], errs["LogGP"])
	}
	if lmo > 0.3 {
		t.Fatalf("LMO scatter error %v too large", lmo)
	}
}

func TestFig5LMOMostAccurateOnGather(t *testing.T) {
	rep, err := Fig5(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	var obs []float64
	errs := map[string]float64{}
	for _, s := range rep.Series {
		if s.Name == "observed (mean)" {
			for _, p := range s.Points {
				obs = append(obs, p.Y)
			}
		}
	}
	for _, s := range rep.Series {
		if strings.HasPrefix(s.Name, "observed") || strings.HasPrefix(s.Name, "LMO band") {
			continue
		}
		var ys []float64
		for _, p := range s.Points {
			ys = append(ys, p.Y)
		}
		errs[s.Name] = meanAbsRelError(obs, ys)
	}
	lmo := errs["LMO (eq 5)"]
	for name, e := range errs {
		if name == "LMO (eq 5)" {
			continue
		}
		if lmo >= e {
			t.Fatalf("LMO gather error %v should beat %s (%v)", lmo, name, e)
		}
	}
}

func TestFig6LMODecidesAtLeastAsWell(t *testing.T) {
	rep, err := Fig6(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Notes) == 0 {
		t.Fatal("fig6 must report decision quality")
	}
	// Parse the decision counts out of the algorithm-choices table: the
	// observed faster algorithm at 100–200KB must be linear (the paper's
	// setting), and LMO must agree everywhere.
	var rows [][]string
	for _, tb := range rep.Tables {
		if tb.Caption == "algorithm choices" {
			rows = tb.Rows
		}
	}
	if rows == nil {
		t.Fatal("missing algorithm-choices table")
	}
	lmoCorrect := 0
	for _, row := range rows[1:] {
		if row[1] != "linear" {
			t.Fatalf("at %s the observed faster alg is %s; expected linear for 100–200KB", row[0], row[1])
		}
		if row[3] == row[1] {
			lmoCorrect++
		}
	}
	if lmoCorrect != len(rows)-1 {
		t.Fatalf("LMO correct on %d/%d sizes", lmoCorrect, len(rows)-1)
	}
}

func TestFig7SpeedupInIrregularRegion(t *testing.T) {
	rep, err := Fig7(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	var native, opt []float64
	for _, s := range rep.Series {
		var ys []float64
		for _, p := range s.Points {
			ys = append(ys, p.Y)
		}
		switch s.Name {
		case "native gather (mean)":
			native = ys
		case "optimized gather (mean)":
			opt = ys
		}
	}
	if len(native) == 0 || len(opt) == 0 {
		t.Fatal("fig7 series missing")
	}
	better := 0
	for i := range native {
		if opt[i] < native[i] {
			better++
		}
	}
	if better*2 < len(native) {
		t.Fatalf("optimized gather better at only %d/%d sizes", better, len(native))
	}
}

func TestTable1Report(t *testing.T) {
	rep, err := Table1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 9 {
		t.Fatalf("rows = %d, want header + 8 nodes", len(rep.Tables[0].Rows))
	}
}

func TestTable2GatherSteeperAboveM2(t *testing.T) {
	rep, err := Table2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("table2 should carry formulas and numbers")
	}
	// In the numeric table, LMO's gather at 128K must exceed its scatter
	// at 128K (sum vs max branch).
	var lmoRow []string
	num := rep.Tables[1].Rows
	for _, row := range num {
		if row[0] == "LMO" {
			lmoRow = row
		}
	}
	if lmoRow == nil {
		t.Fatal("missing LMO row")
	}
	var scat, gath float64
	if _, err := sscanSeconds(lmoRow[5], &scat); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanSeconds(lmoRow[6], &gath); err != nil {
		t.Fatal(err)
	}
	if gath <= scat {
		t.Fatalf("LMO gather@128K (%v) should exceed scatter@128K (%v)", gath, scat)
	}
}

func TestEstCostReport(t *testing.T) {
	rep, err := EstCost(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 4 {
		t.Fatalf("estcost rows = %d", len(rep.Tables[0].Rows))
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "speedup") {
		t.Fatalf("estcost notes = %v", rep.Notes)
	}
}

func TestIrregReportBothProfiles(t *testing.T) {
	cfg := smallCfg()
	rep, err := Irreg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + LAM + MPICH", len(rows))
	}
	if rows[1][2] == rows[2][2] {
		t.Fatalf("LAM and MPICH should detect different regions: %v vs %v", rows[1][2], rows[2][2])
	}
}

func TestRunnersAndLookup(t *testing.T) {
	rs := Runners()
	if len(rs) != 20 {
		t.Fatalf("runners = %d, want 20", len(rs))
	}
	if Lookup("fig4") == nil || Lookup("nope") != nil {
		t.Fatal("lookup broken")
	}
	ids := map[string]bool{}
	for _, r := range rs {
		if ids[r.ID] {
			t.Fatalf("duplicate runner id %s", r.ID)
		}
		ids[r.ID] = true
	}
}

func TestRenderAndCSV(t *testing.T) {
	rep, err := Fig2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Render(&buf, rep)
	if !strings.Contains(buf.String(), "Fig 2") {
		t.Fatal("render missing title")
	}
	// Table-only reports produce no CSV.
	tableOnly, err := Table1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, tableOnly); err != nil {
		t.Fatal(err)
	}
	if csv.Len() != 0 {
		t.Fatal("table-only report should emit no CSV")
	}
	// A report with series produces a header and rows.
	withSeries := &Report{Series: []textplot.Series{
		{Name: "a", Points: []textplot.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}},
		{Name: "b,comma", Points: []textplot.Point{{X: 1, Y: 5}}},
	}}
	csv.Reset()
	if err := WriteCSV(&csv, withSeries); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %v", lines)
	}
	if lines[0] != `x,a,"b,comma"` {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestObserveShapes(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{1 << 10, 4 << 10}
	cfg.ObsReps = 3
	obs, err := Observe(cfg, Scatter, mpi.Linear)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Mean) != 2 || obs.Mean[0] <= 0 || obs.Mean[1] <= obs.Mean[0] {
		t.Fatalf("observation = %+v", obs)
	}
	const ulp = 1e-12
	if obs.Max[0] < obs.Mean[0]-ulp || obs.Min[0] > obs.Mean[0]+ulp {
		t.Fatal("max/min bracket violated")
	}
}

// sscanSeconds parses a "0.0123s" cell.
func sscanSeconds(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
	*out = v
	return 1, err
}

func TestAblationReport(t *testing.T) {
	rep, err := Ablation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("ablation tables = %d", len(rep.Tables))
	}
	model := rep.Tables[0].Rows
	if len(model) != 3 {
		t.Fatalf("model ablation rows = %d", len(model))
	}
	// The extended model's scatter error must beat the original's.
	var origErr, extErr float64
	if _, err := sscanPercent(model[1][1], &origErr); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanPercent(model[2][1], &extErr); err != nil {
		t.Fatal(err)
	}
	if extErr > origErr {
		t.Fatalf("extended error %v%% should not exceed original %v%%", extErr, origErr)
	}
	// TCP factors: gather must show larger irregularity contributions
	// than scatter at some size.
	sub := rep.Tables[1].Rows
	sawBigGatherFactor := false
	for _, row := range sub[1:] {
		var g float64
		if _, err := sscanFactor(row[2], &g); err != nil {
			t.Fatal(err)
		}
		if g > 2 {
			sawBigGatherFactor = true
		}
	}
	if !sawBigGatherFactor {
		t.Fatal("gather TCP factor should exceed 2x somewhere in the irregular region")
	}
	// Protocol ablation: under rendezvous, eq (4) must under-predict
	// (negative error) at large sizes while the Hockney serial sum fits
	// far better there.
	proto := rep.Tables[2].Rows
	last := proto[len(proto)-1]
	var eq4Rdv, serialRdv float64
	if _, err := sscanPercent(strings.TrimPrefix(last[2], "+"), &eq4Rdv); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanPercent(strings.TrimPrefix(last[3], "+"), &serialRdv); err != nil {
		t.Fatal(err)
	}
	if eq4Rdv >= 0 {
		t.Fatalf("eq(4) should under-predict rendezvous scatter: %v%%", eq4Rdv)
	}
	if math.Abs(serialRdv) >= math.Abs(eq4Rdv) {
		t.Fatalf("Hockney serial (%v%%) should fit rendezvous better than eq(4) (%v%%)", serialRdv, eq4Rdv)
	}
}

func TestAlgZooReport(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{1 << 10, 32 << 10, 200 << 10}
	rep, err := AlgZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 8 { // 4 observed + 4 predicted
		t.Fatalf("series = %d, want 8", len(rep.Series))
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every pick's penalty must stay sane (< 2x of the fastest).
	for _, row := range rows[1:] {
		var pen float64
		if _, err := sscanFactor(row[3], &pen); err != nil {
			t.Fatal(err)
		}
		if pen > 2 {
			t.Fatalf("LMO pick penalty %vx at %s", pen, row[0])
		}
	}
}

func TestTimingReport(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{8 << 10, 64 << 10}
	cfg.ObsReps = 4
	rep, err := Timing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 4 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	var scRoot, scMax []float64
	for _, s := range rep.Series {
		var ys []float64
		for _, p := range s.Points {
			ys = append(ys, p.Y)
		}
		switch s.Name {
		case "scatter root-timing":
			scRoot = ys
		case "scatter makespan":
			scMax = ys
		}
	}
	for i := range scRoot {
		if scRoot[i] >= scMax[i] {
			t.Fatalf("scatter root timing (%v) must undershoot makespan (%v)", scRoot[i], scMax[i])
		}
	}
}

// sscanPercent parses "12.3%".
func sscanPercent(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	*out = v
	return 1, err
}

// sscanFactor parses "1.23×".
func sscanFactor(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "×"), 64)
	*out = v
	return 1, err
}

func TestPrecisionReport(t *testing.T) {
	rep, err := Precision(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want header + 4 targets", len(rows))
	}
	// Round-trips converge at the minimum regardless of target; the
	// escalating gather needs (weakly) more repetitions as the target
	// tightens.
	var prevGather float64
	for i := 1; i < len(rows); i++ { // loosest → tightest
		var rt, g float64
		if _, err := fmtAtoi(rows[i][1], &rt); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtAtoi(rows[i][2], &g); err != nil {
			t.Fatal(err)
		}
		if rt != 8 {
			t.Fatalf("clean round-trip should converge at MinReps: %v", rows[i])
		}
		if g < prevGather {
			t.Fatalf("gather reps should not shrink as targets tighten: %v", rows)
		}
		prevGather = g
	}
	if prevGather <= 8 {
		t.Fatal("noisy gather should need more than the minimum repetitions")
	}
}

func TestScalingReport(t *testing.T) {
	cfg := smallCfg()
	rep, err := Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) < 4 { // header + n=4,6,8 at least
		t.Fatalf("rows = %d", len(rows))
	}
	// Costs and experiment counts must grow with n.
	var prevExp float64
	for _, row := range rows[1:] {
		var exp float64
		if _, err := fmtAtoi(row[1], &exp); err != nil {
			t.Fatal(err)
		}
		if exp <= prevExp {
			t.Fatalf("experiments should grow with n: %v", rows)
		}
		prevExp = exp
		var errPct float64
		if _, err := sscanPercent(row[4], &errPct); err != nil {
			t.Fatal(err)
		}
		if errPct > 40 {
			t.Fatalf("LMO error %v%% at %s nodes", errPct, row[0])
		}
	}
}

func fmtAtoi(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(s, 64)
	*out = v
	return 1, err
}

func TestCollectivesReport(t *testing.T) {
	rep, err := Collectives(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 13 { // header + 6 ops × 2 sizes
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows[1:] {
		var rel float64
		if _, err := sscanPercent(row[4], &rel); err != nil {
			t.Fatal(err)
		}
		if rel > 40 {
			t.Fatalf("%s at %s: prediction off by %v%%", row[0], row[1], rel)
		}
	}
}

func TestTransferReport(t *testing.T) {
	rep, err := Transfer(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][1] != "yes" || rows[2][1] != "no" {
		t.Fatalf("transfer verdicts = %v / %v", rows[1][1], rows[2][1])
	}
}

// End-to-end determinism: an entire figure (estimation + noisy
// observation) reruns bit-identically with the same seed.
func TestFigureDeterminism(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{8 << 10, 32 << 10}
	a, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatal("series count differs")
	}
	for i := range a.Series {
		for j := range a.Series[i].Points {
			if a.Series[i].Points[j] != b.Series[i].Points[j] {
				t.Fatalf("series %q point %d differs: %v vs %v",
					a.Series[i].Name, j, a.Series[i].Points[j], b.Series[i].Points[j])
			}
		}
	}
}
