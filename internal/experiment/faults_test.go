package experiment

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/faults"
)

func TestFaultsReport(t *testing.T) {
	rep, err := FaultsExp(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "faults" || len(rep.Series) != 4 {
		t.Fatalf("report shape: id=%q series=%d", rep.ID, len(rep.Series))
	}
	// The accounting table holds a header plus one row per platform;
	// the last cell of each row is the prediction error, "12.3%".
	acc := rep.Tables[0].Rows
	if len(acc) != 3 {
		t.Fatalf("accounting rows = %d, want 3", len(acc))
	}
	parsePct := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("unparsable error cell %q: %v", cell, err)
		}
		return v / 100
	}
	errClean := parsePct(acc[1][len(acc[1])-1])
	errFaulty := parsePct(acc[2][len(acc[2])-1])
	// Each model must predict its own platform; the faulty estimation
	// is allowed a degraded but bounded accuracy.
	if limit := math.Max(3*errClean, 0.10); errFaulty > limit {
		t.Fatalf("faulty prediction error %.1f%% exceeds limit %.1f%% (clean %.1f%%)",
			100*errFaulty, 100*limit, 100*errClean)
	}
	// The plan table must describe the demo plan's three fault kinds.
	var kinds []string
	for _, row := range rep.Tables[1].Rows[1:] {
		kinds = append(kinds, row[0])
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"loss", "degrade", "straggler"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("plan table misses %q: %v", want, kinds)
		}
	}
	if len(rep.Notes) == 0 {
		t.Fatal("report has no notes")
	}
}

func TestFaultsReportHonorsConfiguredPlan(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{8 << 10, 64 << 10}
	cfg.ObsReps = 4
	cfg.Faults = &faults.Plan{Stragglers: []faults.Straggler{{Node: 1, CPUX: 3}}}
	rep, err := FaultsExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[1].Rows
	if len(rows) != 2 || rows[1][0] != "straggler" {
		t.Fatalf("plan table should show only the configured straggler: %v", rows)
	}
	// A pure straggler plan loses no packets.
	act := rep.Tables[2].Rows[1]
	if act[0] != "0" {
		t.Fatalf("straggler-only plan lost packets: %v", act)
	}
}
