package vtime

import (
	"fmt"
	"time"
)

// Resource is a FIFO counting semaphore in virtual time. It models a
// contended facility such as a CPU, a NIC or a switch port: a process
// acquires some units, holds them for a stretch of virtual time, and
// releases them. Waiters are served strictly in arrival order (no
// barging), which keeps simulations deterministic and fair.
type Resource struct {
	e        *Engine
	capacity int64
	inUse    int64
	waiters  []*resWaiter
	name     string
}

type resWaiter struct {
	p       *Proc
	n       int64
	granted bool
}

// NewResource returns a resource with the given capacity (units > 0).
func NewResource(e *Engine, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("vtime: resource capacity must be positive")
	}
	return &Resource{e: e, capacity: capacity, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int64 { return r.inUse }

// Acquire blocks the calling process until n units are available and no
// earlier waiter is pending, then takes them. n must be in (0, capacity].
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("vtime: acquire %d of resource %q with capacity %d", n, r.name, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	w := &p.resW // reused node: p blocks on at most one queue at a time
	w.p, w.n, w.granted = p, n, false
	r.waiters = append(r.waiters, w)
	for !w.granted {
		p.blockSync()
	}
}

// TryAcquire takes n units if immediately available, without blocking.
// It reports whether the units were taken.
func (r *Resource) TryAcquire(n int64) bool {
	if n <= 0 || n > r.capacity {
		return false
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and wakes waiters that now fit, in FIFO order.
// It may be called from any process or from engine context.
func (r *Resource) Release(n int64) {
	if n <= 0 {
		panic("vtime: release of non-positive units")
	}
	r.inUse -= n
	if r.inUse < 0 {
		panic(fmt.Sprintf("vtime: resource %q released below zero", r.name))
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break // strict FIFO: do not let later small requests barge
		}
		r.inUse += w.n
		w.granted = true
		r.waiters = r.waiters[1:]
		r.e.wakeSync(w.p)
	}
}

// Use acquires n units, holds them for d of virtual time, and releases
// them. It is the common "occupy facility for a service time" pattern.
func (r *Resource) Use(p *Proc, n int64, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// QueueLen returns the number of processes waiting on the resource.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Cond is a condition variable in virtual time. Processes Wait on it
// and are woken by Signal or Broadcast; as with sync.Cond, waiters must
// re-check their predicate in a loop.
type Cond struct {
	e       *Engine
	waiters []*condWaiter
}

type condWaiter struct {
	p     *Proc
	woken bool
}

// NewCond returns a condition variable bound to the engine.
func NewCond(e *Engine) *Cond { return &Cond{e: e} }

// Wait parks the calling process until a Signal or Broadcast.
func (c *Cond) Wait(p *Proc) {
	w := &p.condW // reused node: p blocks on at most one queue at a time
	w.p, w.woken = p, false
	c.waiters = append(c.waiters, w)
	for !w.woken {
		p.blockSync()
	}
}

// Signal wakes the earliest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.woken = true
	c.e.wakeSync(w.p)
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.woken = true
		c.e.wakeSync(w.p)
	}
}

// NumWaiters returns the number of parked processes.
func (c *Cond) NumWaiters() int { return len(c.waiters) }

// Barrier synchronizes a fixed party of processes at zero virtual cost.
// It is harness machinery (aligning measurement repetitions), not a
// model of a network barrier; the mpi package provides a costed one.
type Barrier struct {
	e       *Engine
	parties int
	arrived int
	gen     int
	cond    *Cond
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(e *Engine, parties int) *Barrier {
	if parties <= 0 {
		panic("vtime: barrier parties must be positive")
	}
	return &Barrier{e: e, parties: parties, cond: NewCond(e)}
}

// Wait blocks until all parties have arrived, then releases them all at
// the same virtual instant.
func (b *Barrier) Wait(p *Proc) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		// Let the released waiters run before the releaser continues, so
		// every party observes the same wake ordering discipline.
		p.Yield()
		return
	}
	for gen == b.gen {
		b.cond.Wait(p)
	}
}
