// Package vtime implements a deterministic discrete-event simulation
// kernel with coroutine-style processes.
//
// An Engine owns a virtual clock and an event queue. Processes are
// goroutines that cooperate with the engine so that exactly one
// goroutine (either the Run caller or a single process) runs at any
// moment. Events with equal timestamps fire in scheduling order, which
// makes a simulation fully deterministic for a deterministic program.
//
// The event loop is allocation-free on its dominant path. Events are
// a typed union held in a hand-rolled slice-backed min-heap — no
// container/heap interface boxing, no per-event closure — and the
// dispatcher role migrates with control: whichever goroutine is active
// processes events, so a process that sleeps and is the next to wake
// simply continues, with no goroutine switch and no channel operation.
// Handing control to a different process costs one switch, not the two
// (process → engine → process) of a central dispatcher.
//
// The package provides the synchronization primitives needed by the
// network simulator built on top of it: Sleep (advance local time),
// Resource (FIFO counting semaphore, used for CPUs and ports) and Cond
// (condition variable in virtual time, used for mailboxes).
package vtime

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventQueue

	mainWake chan struct{} // wakes the Run caller at drain or failure

	liveProcs   int // processes that have been started and not finished
	blockedSync int // processes parked in a Resource/Cond queue (no pending event)

	running  bool
	nextID   int
	failErr  error // first process panic or step-bound violation
	cbPanic  any   // panic raised by an event callback, re-raised from Run
	steps    uint64
	maxSteps uint64 // safety valve; 0 means unlimited

	// Observability. The counters are cached at SetObserver time so the
	// dispatch loops pay one nil check per event when tracing is off and
	// one atomic add when it is on — never a lookup, never an allocation.
	obsTrace   *obs.Trace
	obsEvents  *obs.Counter // events dispatched (resume + call + handler)
	obsResumes *obs.Counter // events that resumed a process
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{mainWake: make(chan struct{}, 1)}
}

// SetMaxSteps bounds the number of events the engine will process in
// Run; exceeding the bound makes Run return an error. Zero (the
// default) means unlimited. Useful as a runaway guard in tests.
func (e *Engine) SetMaxSteps(n uint64) { e.maxSteps = n }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// SetObserver installs a trace to observe event dispatch (nil removes
// it). Observation is purely passive: it counts dispatched events and
// never schedules, so an observed run pops the identical event stream
// at identical virtual timestamps. Install before Run.
func (e *Engine) SetObserver(t *obs.Trace) {
	e.obsTrace = t
	if t == nil {
		e.obsEvents, e.obsResumes = nil, nil
		return
	}
	e.obsEvents = t.Counter("vtime.events")
	e.obsResumes = t.Counter("vtime.resumes")
}

// noteEvent counts one dispatched event against the observer. The
// disabled path is a single nil compare.
//
//lmovet:hotpath
func (e *Engine) noteEvent(resume bool) {
	if e.obsEvents == nil {
		return
	}
	e.obsEvents.Add(1)
	if resume {
		e.obsResumes.Add(1)
	}
}

// Handler is a prepared event action. Objects implementing it can be
// scheduled with AtHandler without allocating a closure: the interface
// pair is stored inline in the typed event union, so a caller that
// pools its handler objects schedules events allocation-free.
type Handler interface{ Fire() }

// event is one queue entry: a tagged union of "resume process p" (p
// non-nil — the dominant case, carrying no closure), "call fn in
// engine context" (fn non-nil) and "fire prepared handler h".
type event struct {
	t   time.Duration
	seq uint64
	p   *Proc
	fn  func()
	h   Handler
}

// before orders events by (time, schedule sequence); the sequence
// tiebreak makes the order total, so any correct heap pops the exact
// same event stream — determinism does not depend on heap internals.
func (a event) before(b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// eventQueue is a slice-backed binary min-heap of typed events.
// Hand-rolled instead of container/heap so pushing and popping never
// box an event into an interface: a push is an append plus sift-up,
// allocation-free once the backing array has grown.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// push appends and sifts up. Allocation-free once the backing array
// has grown (q.ev is a long-lived field, so append amortizes away).
//
//lmovet:hotpath
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.ev[i].before(q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes the min event and sifts down, allocation-free.
//
//lmovet:hotpath
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // drop the fn/proc references
	q.ev = q.ev[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q.ev[r].before(q.ev[l]) {
			c = r
		}
		if !q.ev[c].before(q.ev[i]) {
			break
		}
		q.ev[i], q.ev[c] = q.ev[c], q.ev[i]
		i = c
	}
	return top
}

// scheduleCall enqueues an engine-context callback at absolute time t
// (clamped to now).
func (e *Engine) scheduleCall(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, fn: fn})
}

// scheduleResume enqueues the resumption of p at absolute time t
// (clamped to now). This is the allocation-free fast path.
//
//lmovet:hotpath
func (e *Engine) scheduleResume(t time.Duration, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, p: p})
}

// At schedules fn to run in engine context at absolute virtual time t
// (clamped to now). fn must not block.
func (e *Engine) At(t time.Duration, fn func()) { e.scheduleCall(t, fn) }

// AtHandler schedules h.Fire() to run in engine context at absolute
// virtual time t (clamped to now), without allocating a closure. Fire
// must not block.
//
//lmovet:hotpath
func (e *Engine) AtHandler(t time.Duration, h Handler) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, h: h})
}

// After schedules fn to run in engine context d after the current time.
// fn must not block.
func (e *Engine) After(d time.Duration, fn func()) { e.scheduleCall(e.now+d, fn) }

// Proc is a simulated process. All Proc methods must be called from the
// goroutine running the process body.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan struct{} // capacity 1: at most one resume token in flight
	done   bool

	// Embedded wait-queue nodes, reused across waits: a process blocks
	// on at most one Resource or Cond at a time, so queueing it never
	// allocates.
	resW  resWaiter
	condW condWaiter
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// ID returns the engine-unique process id.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// procExit is the sentinel Proc.Exit panics with: it unwinds the
// process body (running its deferred functions) and terminates the
// process as if the body had returned, without failing the engine.
type procExit struct{}

// Exit terminates the calling process immediately, as if its body had
// returned. It is the mechanism behind simulated node crashes: the
// dead node's process unwinds cleanly while the rest of the simulation
// keeps running.
func (p *Proc) Exit() {
	panic(procExit{})
}

// Go starts a new process executing body. It may be called before Run
// or from a running process or event callback. The process begins at
// the current virtual time.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{e: e, id: e.nextID, name: name, resume: make(chan struct{}, 1)}
	e.liveProcs++
	go func() {
		<-p.resume // wait for a dispatcher to hand us control
		defer func() {
			if r := recover(); r != nil {
				if _, exited := r.(procExit); !exited && e.failErr == nil {
					// A panic value that is itself an error stays unwrappable
					// (errors.As), so typed failures — bad collective input, a
					// crashed peer — survive the trip through the engine.
					if err, ok := r.(error); ok {
						e.failErr = fmt.Errorf("vtime: process %q failed: %w", p.name, err)
					} else {
						e.failErr = fmt.Errorf("vtime: process %q panicked: %v", p.name, r)
					}
				}
			}
			p.done = true
			e.liveProcs--
			e.dispatchFromExit() // pass the dispatcher role on, then die
		}()
		body(p)
	}()
	e.scheduleResume(e.now, p)
	return p
}

// broken reports whether the run has failed and dispatching must stop.
func (e *Engine) broken() bool { return e.failErr != nil || e.cbPanic != nil }

// bumpSteps counts one event against the per-Run step bound; false
// means the bound was exceeded (failErr set, the event left queued).
func (e *Engine) bumpSteps() bool {
	if e.maxSteps == 0 {
		return true
	}
	e.steps++
	if e.steps > e.maxSteps {
		if e.failErr == nil {
			// Fires at most once per Run, on the failure path that ends
			// the simulation.
			//lmovet:allow hotalloc
			e.failErr = fmt.Errorf("vtime: exceeded %d steps at %v", e.maxSteps, e.now)
		}
		return false
	}
	return true
}

// callEvent runs a callback or handler event, capturing a panic so it
// can be re-raised from Run on the caller's stack (an event may execute
// on whichever goroutine holds the dispatcher role).
func (e *Engine) callEvent(ev event) {
	// The deferred recover closure is open-coded by the compiler and
	// captures only the receiver; it does not heap-allocate (guarded by
	// the simbench zero-alloc benchmarks).
	//lmovet:allow hotalloc
	defer func() {
		if r := recover(); r != nil {
			e.cbPanic = r
		}
	}()
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.Fire()
	}
}

// dispatchAs runs the event loop on behalf of the engine until self's
// own resume event pops, the queue drains, or the run breaks. The
// calling process must either have a resume event queued (Sleep) or be
// registered with a Resource/Cond that will schedule one (blockSync).
//
// This is the kernel's hot path: when the popped event resumes the
// dispatching process itself, it simply returns — no goroutine switch,
// no channel operation, no allocation.
//
//lmovet:hotpath
func (e *Engine) dispatchAs(self *Proc) {
	for {
		if e.broken() || e.events.len() == 0 || !e.bumpSteps() {
			// Drained or failed: hand control back to Run, park until a
			// later Run pops our resume event.
			e.mainWake <- struct{}{}
			<-self.resume
			return
		}
		ev := e.events.pop()
		e.now = ev.t
		e.noteEvent(ev.p != nil)
		if ev.p != nil {
			if ev.p == self {
				return // fast path: the dispatcher resumes itself
			}
			ev.p.resume <- struct{}{} // hand the role to the woken process
			<-self.resume
			return
		}
		e.callEvent(ev)
	}
}

// dispatchFromExit passes the dispatcher role on when a process
// terminates: events run here until control lands on another process
// or the run ends, then the dead process's goroutine returns.
//
//lmovet:hotpath
func (e *Engine) dispatchFromExit() {
	for {
		if e.broken() || e.events.len() == 0 || !e.bumpSteps() {
			e.mainWake <- struct{}{}
			return
		}
		ev := e.events.pop()
		e.now = ev.t
		e.noteEvent(ev.p != nil)
		if ev.p != nil {
			ev.p.resume <- struct{}{}
			return
		}
		e.callEvent(ev)
	}
}

// park suspends the calling process until something resumes it, lending
// its goroutine to the engine as the event dispatcher meanwhile.
func (p *Proc) park() { p.e.dispatchAs(p) }

// Sleep advances the process's local time by d, modelling the process
// being busy (or idle) for that long. Other events proceed meanwhile.
//
//lmovet:hotpath
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.e
	e.scheduleResume(e.now+d, p)
	e.dispatchAs(p)
}

// Yield lets all other events scheduled at the current instant run
// before the process continues. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// blockSync parks the process with no pending event; a Resource or Cond
// holds it in a queue and is responsible for waking it later.
func (p *Proc) blockSync() {
	p.e.blockedSync++
	p.park()
}

// wakeSync schedules p to resume at the current virtual time. It is the
// counterpart of blockSync and may be called from engine context or
// from another process.
func (e *Engine) wakeSync(p *Proc) {
	e.blockedSync--
	e.scheduleResume(e.now, p)
}

// DeadlockError is returned by Run when processes remain blocked on
// synchronization with no pending events.
type DeadlockError struct {
	Blocked int
	Time    time.Duration
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at %v: %d process(es) blocked with no pending events", d.Time, d.Blocked)
}

// Run processes events until none remain. It returns a *DeadlockError
// if processes remain blocked on a Resource or Cond when the event
// queue drains, or an error if the step bound is exceeded. After the
// first handoff to a process, the dispatcher role lives with the
// processes; Run sleeps until the run drains or breaks.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("vtime: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()
	e.steps = 0
	for {
		if e.cbPanic != nil {
			r := e.cbPanic
			e.cbPanic = nil
			panic(r)
		}
		if e.failErr != nil {
			return e.failErr
		}
		if e.events.len() == 0 {
			break
		}
		if !e.bumpSteps() {
			return e.failErr
		}
		ev := e.events.pop()
		e.now = ev.t
		e.noteEvent(ev.p != nil)
		if ev.p != nil {
			ev.p.resume <- struct{}{}
			<-e.mainWake // sleep until the run drains or breaks
			continue
		}
		e.callEvent(ev)
	}
	if e.blockedSync > 0 {
		return &DeadlockError{Blocked: e.blockedSync, Time: e.now}
	}
	return nil
}
