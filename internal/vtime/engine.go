// Package vtime implements a deterministic discrete-event simulation
// kernel with coroutine-style processes.
//
// An Engine owns a virtual clock and an event queue. Processes are
// goroutines that cooperate with the engine so that exactly one
// goroutine (either the engine or a single process) runs at any moment.
// Events with equal timestamps fire in scheduling order, which makes a
// simulation fully deterministic for a deterministic program.
//
// The package provides the synchronization primitives needed by the
// network simulator built on top of it: Sleep (advance local time),
// Resource (FIFO counting semaphore, used for CPUs and ports) and Cond
// (condition variable in virtual time, used for mailboxes).
package vtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap

	yield chan struct{} // a process hands control back to the engine

	liveProcs   int // processes that have been started and not finished
	blockedSync int // processes parked in a Resource/Cond queue (no pending event)

	running  bool
	nextID   int
	panicErr error  // first panic raised by a process body
	maxSteps uint64 // safety valve; 0 means unlimited
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// SetMaxSteps bounds the number of events the engine will process in
// Run; exceeding the bound makes Run return an error. Zero (the
// default) means unlimited. Useful as a runaway guard in tests.
func (e *Engine) SetMaxSteps(n uint64) { e.maxSteps = n }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

type event struct {
	t   time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (e *Engine) schedule(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// At schedules fn to run in engine context at absolute virtual time t
// (clamped to now). fn must not block.
func (e *Engine) At(t time.Duration, fn func()) { e.schedule(t, fn) }

// After schedules fn to run in engine context d after the current time.
// fn must not block.
func (e *Engine) After(d time.Duration, fn func()) { e.schedule(e.now+d, fn) }

// Proc is a simulated process. All Proc methods must be called from the
// goroutine running the process body.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// ID returns the engine-unique process id.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// procExit is the sentinel Proc.Exit panics with: it unwinds the
// process body (running its deferred functions) and terminates the
// process as if the body had returned, without failing the engine.
type procExit struct{}

// Exit terminates the calling process immediately, as if its body had
// returned. It is the mechanism behind simulated node crashes: the
// dead node's process unwinds cleanly while the rest of the simulation
// keeps running.
func (p *Proc) Exit() {
	panic(procExit{})
}

// Go starts a new process executing body. It may be called before Run
// or from a running process or event callback. The process begins at
// the current virtual time.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{e: e, id: e.nextID, name: name, resume: make(chan struct{})}
	e.liveProcs++
	go func() {
		<-p.resume // wait for the engine to hand us control
		defer func() {
			if r := recover(); r != nil {
				if _, exited := r.(procExit); !exited && e.panicErr == nil {
					// A panic value that is itself an error stays unwrappable
					// (errors.As), so typed failures — bad collective input, a
					// crashed peer — survive the trip through the engine.
					if err, ok := r.(error); ok {
						e.panicErr = fmt.Errorf("vtime: process %q failed: %w", p.name, err)
					} else {
						e.panicErr = fmt.Errorf("vtime: process %q panicked: %v", p.name, r)
					}
				}
			}
			p.done = true
			e.liveProcs--
			e.yield <- struct{}{} // give control back for good
		}()
		body(p)
	}()
	e.schedule(e.now, func() { e.transferTo(p) })
	return p
}

// transferTo hands control to p and waits until p parks or finishes.
// Runs in engine context.
func (e *Engine) transferTo(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// park suspends the calling process until something resumes it.
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process's local time by d, modelling the process
// being busy (or idle) for that long. Other events proceed meanwhile.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.e
	e.schedule(e.now+d, func() { e.transferTo(p) })
	p.park()
}

// Yield lets all other events scheduled at the current instant run
// before the process continues. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// blockSync parks the process with no pending event; a Resource or Cond
// holds it in a queue and is responsible for waking it later.
func (p *Proc) blockSync() {
	p.e.blockedSync++
	p.park()
}

// wakeSync schedules p to resume at the current virtual time. It is the
// counterpart of blockSync and may be called from engine context or
// from another process.
func (e *Engine) wakeSync(p *Proc) {
	e.blockedSync--
	e.schedule(e.now, func() { e.transferTo(p) })
}

// DeadlockError is returned by Run when processes remain blocked on
// synchronization with no pending events.
type DeadlockError struct {
	Blocked int
	Time    time.Duration
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at %v: %d process(es) blocked with no pending events", d.Time, d.Blocked)
}

// Run processes events until none remain. It returns a *DeadlockError
// if processes remain blocked on a Resource or Cond when the event
// queue drains, or an error if the step bound is exceeded.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("vtime: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()
	var steps uint64
	for e.events.Len() > 0 {
		if e.maxSteps > 0 {
			steps++
			if steps > e.maxSteps {
				return fmt.Errorf("vtime: exceeded %d steps at %v", e.maxSteps, e.now)
			}
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		ev.fn()
		if e.panicErr != nil {
			return e.panicErr
		}
	}
	if e.blockedSync > 0 {
		return &DeadlockError{Blocked: e.blockedSync, Time: e.now}
	}
	return nil
}
