package vtime

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var end time.Duration
	e.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Sleep(5 * time.Millisecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 15*time.Millisecond {
		t.Fatalf("end = %v, want 15ms", end)
	}
	if e.Now() != 15*time.Millisecond {
		t.Fatalf("engine now = %v, want 15ms", e.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEngine()
	e.Go("a", func(p *Proc) { p.Sleep(-time.Second) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 {
		t.Fatalf("now = %v, want 0", e.Now())
	}
}

func TestParallelProcessesOverlap(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Go("p", func(p *Proc) { p.Sleep(100 * time.Millisecond) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 100*time.Millisecond {
		t.Fatalf("10 parallel sleeps took %v, want 100ms", e.Now())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 8; i++ {
			e.Go("p", func(p *Proc) {
				p.Sleep(time.Duration(8-i%3) * time.Millisecond)
				order = append(order, i)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("missing completions: %v %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order: %v vs %v", a, b)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time fired out of order: %v", order)
		}
	}
}

func TestAfterCallback(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Go("a", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		p.Engine().After(3*time.Millisecond, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("callback at %v, want 5ms", at)
	}
}

func TestAtClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := time.Duration(-1)
	e.Go("a", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		e.At(time.Millisecond, func() { fired = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to 5ms", fired)
	}
}

func TestGoFromProcess(t *testing.T) {
	e := NewEngine()
	var childEnd time.Duration
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childEnd = c.Now()
		})
		p.Sleep(10 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 2*time.Millisecond {
		t.Fatalf("child ended at %v, want 2ms", childEnd)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("p", func(p *Proc) {
			r.Use(p, 1, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceCapacityTwoAllowsPairs(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dual", 2)
	var maxEnd time.Duration
	for i := 0; i < 4; i++ {
		e.Go("p", func(p *Proc) {
			r.Use(p, 1, 10*time.Millisecond)
			if p.Now() > maxEnd {
				maxEnd = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxEnd != 20*time.Millisecond {
		t.Fatalf("4 jobs on capacity-2 resource finished at %v, want 20ms", maxEnd)
	}
}

func TestResourceFIFONoBarging(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 2)
	var order []string
	// Holder takes both units; then "big" (needs 2) arrives before
	// "small" (needs 1). When one unit frees, small must NOT overtake big.
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(10 * time.Millisecond)
		r.Release(1)
		p.Sleep(10 * time.Millisecond)
		r.Release(1)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 2)
		order = append(order, "big")
		r.Release(2)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	e.Go("a", func(p *Proc) {
		if !r.TryAcquire(1) {
			t.Error("first TryAcquire failed")
		}
		if r.TryAcquire(1) {
			t.Error("second TryAcquire succeeded on full resource")
		}
		r.Release(1)
		if !r.TryAcquire(1) {
			t.Error("TryAcquire after release failed")
		}
		r.Release(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondSignalWakesInFIFO(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // arrival order 0,1,2
			c.Wait(p)
			order = append(order, i)
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		c.Signal()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Go("stuck", func(p *Proc) { c.Wait(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if de.Blocked != 1 {
		t.Fatalf("blocked = %d, want 1", de.Blocked)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 4)
	var times []time.Duration
	for i := 0; i < 4; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Duration(i*3) * time.Millisecond)
			b.Wait(p)
			times = append(times, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("only %d parties released", len(times))
	}
	for _, at := range times {
		if at != 9*time.Millisecond {
			t.Fatalf("release times %v, want all 9ms", times)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 2)
	rounds := 0
	for i := 0; i < 2; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			for r := 0; r < 5; r++ {
				p.Sleep(time.Duration(i+1) * time.Millisecond)
				b.Wait(p)
				if i == 0 {
					rounds++
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Fatalf("rounds = %d, want 5", rounds)
	}
	// Each round gated by the slower party (2ms).
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v, want 10ms", e.Now())
	}
}

func TestMaxStepsGuard(t *testing.T) {
	e := NewEngine()
	e.SetMaxSteps(100)
	e.Go("spin", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
		}
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected step-bound error")
	}
}

func TestRunTwiceSequentially(t *testing.T) {
	e := NewEngine()
	e.Go("a", func(p *Proc) { p.Sleep(time.Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Adding more work and running again continues from current time.
	e.Go("b", func(p *Proc) { p.Sleep(time.Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("now = %v, want 2ms", e.Now())
	}
}

func TestProcessPanicSurfacesAsError(t *testing.T) {
	e := NewEngine()
	e.Go("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaput")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected panic to surface as Run error")
	}
	if _, isDeadlock := err.(*DeadlockError); isDeadlock {
		t.Fatalf("got deadlock error, want panic error: %v", err)
	}
}

// Property: under random acquire/use/release workloads the resource
// never exceeds capacity and every process completes.
func TestResourcePropertyRandomWorkload(t *testing.T) {
	for seed := 1; seed <= 8; seed++ {
		s := uint64(seed) * 0x9E3779B97F4A7C15
		rnd := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(n))
		}
		e := NewEngine()
		capacity := int64(rnd(4) + 1)
		r := NewResource(e, "r", capacity)
		maxSeen := int64(0)
		completed := 0
		procs := rnd(10) + 2
		for i := 0; i < procs; i++ {
			units := int64(rnd(int(capacity)) + 1)
			hold := time.Duration(rnd(5)+1) * time.Millisecond
			delay := time.Duration(rnd(10)) * time.Millisecond
			e.Go("w", func(p *Proc) {
				p.Sleep(delay)
				r.Acquire(p, units)
				if r.InUse() > maxSeen {
					maxSeen = r.InUse()
				}
				p.Sleep(hold)
				r.Release(units)
				completed++
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if maxSeen > capacity {
			t.Fatalf("seed %d: in-use %d exceeded capacity %d", seed, maxSeen, capacity)
		}
		if completed != procs {
			t.Fatalf("seed %d: %d of %d processes completed", seed, completed, procs)
		}
		if r.InUse() != 0 || r.QueueLen() != 0 {
			t.Fatalf("seed %d: resource not drained", seed)
		}
	}
}

// Property: virtual time observed by any process is non-decreasing
// across arbitrary interleavings of sleeps and synchronization.
func TestClockMonotonicityProperty(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	r := NewResource(e, "r", 2)
	violated := false
	for i := 0; i < 12; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			last := p.Now()
			check := func() {
				if p.Now() < last {
					violated = true
				}
				last = p.Now()
			}
			p.Sleep(time.Duration(i%4) * time.Millisecond)
			check()
			r.Use(p, 1, time.Millisecond)
			check()
			if i%3 == 0 {
				c.Broadcast()
			} else {
				p.Sleep(time.Duration(i) * time.Microsecond)
			}
			check()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("virtual clock went backwards")
	}
}
