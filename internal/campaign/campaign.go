// Package campaign fans a grid of simulation parameters — seeds × TCP
// profiles × cluster specs × experiment/estimator targets — across a
// bounded pool of workers, one isolated vtime/simnet universe per task.
// Simulated runs are deterministic and fully independent, so the
// campaign is embarrassingly parallel: the engine guarantees that the
// merged output depends only on the grid, never on completion order or
// worker count. Per-task wall-clock timeouts, context cancellation and
// panic capture keep one bad run from killing the campaign, and the
// aggregator turns single-seed figures into seed-swept statistics
// (mean and Student-t confidence intervals of estimated parameters and
// prediction errors).
package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/experiment"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/textplot"
	"repro/internal/topo"
)

// TargetKind selects what a grid target runs.
type TargetKind string

// The target kinds.
const (
	// Experiment runs one of the figure/table reproductions
	// (experiment.Lookup IDs: "fig1" … "faults").
	Experiment TargetKind = "experiment"
	// Estimator runs a model estimation ("all", "lmo", "lmo5",
	// "hethockney", "hockney", "logp", "plogp") and returns the
	// estimated models plus parameter metrics.
	Estimator TargetKind = "estimator"
	// Custom marks a caller-defined unit of work: the grid supplies the
	// coordinates and the Options.RunTask hook supplies the executor.
	// Valid only when RunTask is set (the built-in executor has no
	// meaning to attach to the ID). The auto-tuner uses this to
	// validate candidate collective shapes in the event simulator.
	Custom TargetKind = "custom"
)

// Target names one unit of work of the grid.
type Target struct {
	Kind TargetKind `json:"kind"`
	ID   string     `json:"id"`
}

// String renders the target as kind:id.
func (t Target) String() string { return string(t.Kind) + ":" + t.ID }

// ClusterSpec is a named cluster description; the name keys results
// and registry entries.
type ClusterSpec struct {
	Name    string
	Cluster *cluster.Cluster
}

// Grid is the campaign's parameter space: the cross product of seeds,
// TCP profiles, clusters and targets, one task per combination.
type Grid struct {
	Seeds    []int64               // default: {1}
	Profiles []*cluster.TCPProfile // default: {LAM}
	Clusters []ClusterSpec         // default: {table1}
	Targets  []Target              // required

	// Topologies are topology specs (topo.ParseSpec syntax, e.g.
	// "twotier:4x8" or "fattree:8") expanded into additional cluster
	// specs with default hardware — the topology sweep axis.
	Topologies []string

	Est     estimate.Options // estimation options for every task
	ObsReps int              // observation repetitions (experiment targets)
	Root    int              // collective root
}

func (g Grid) withDefaults() Grid {
	if len(g.Seeds) == 0 {
		g.Seeds = []int64{1}
	}
	if len(g.Profiles) == 0 {
		g.Profiles = []*cluster.TCPProfile{cluster.LAM()}
	}
	clusters := append([]ClusterSpec(nil), g.Clusters...)
	for _, spec := range g.Topologies {
		if t, err := topo.ParseSpec(spec); err == nil {
			clusters = append(clusters, ClusterSpec{
				Name:    spec,
				Cluster: cluster.FromTopology(t, cluster.NodeSpec{}, cluster.LinkSpec{}),
			})
		}
	}
	g.Clusters = clusters
	if len(g.Clusters) == 0 {
		g.Clusters = []ClusterSpec{{Name: "table1", Cluster: cluster.Table1()}}
	}
	if reflect.DeepEqual(g.Est, estimate.Options{}) {
		g.Est = estimate.Options{Parallel: true}
	}
	return g
}

// Size is the number of tasks the grid enumerates.
func (g Grid) Size() int {
	g = g.withDefaults()
	return len(g.Seeds) * len(g.Profiles) * len(g.Clusters) * len(g.Targets)
}

// validate fails fast on an unusable grid, before any worker starts.
// customOK reports whether a RunTask hook is installed, which Custom
// targets require.
func (g Grid) validate(customOK bool) error {
	if len(g.Targets) == 0 {
		return fmt.Errorf("campaign: grid has no targets")
	}
	for _, t := range g.Targets {
		switch t.Kind {
		case Experiment:
			if experiment.Lookup(t.ID) == nil {
				return fmt.Errorf("campaign: unknown experiment %q", t.ID)
			}
		case Estimator:
			if !knownEstimator(t.ID) {
				return fmt.Errorf("campaign: unknown estimator %q (all, lmo, lmo5, hethockney, hockney, logp, plogp)", t.ID)
			}
		case Custom:
			if !customOK {
				return fmt.Errorf("campaign: custom target %q requires an Options.RunTask hook", t.ID)
			}
		default:
			return fmt.Errorf("campaign: unknown target kind %q", t.Kind)
		}
	}
	for _, c := range g.Clusters {
		if c.Cluster == nil {
			return fmt.Errorf("campaign: cluster spec %q has a nil cluster", c.Name)
		}
	}
	for _, spec := range g.Topologies {
		if _, err := topo.ParseSpec(spec); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	for _, p := range g.Profiles {
		if p == nil {
			return fmt.Errorf("campaign: nil TCP profile in grid")
		}
	}
	return nil
}

// Coord locates a task in the grid (indexes into the grid's slices).
// Results are keyed and ordered by coordinates, never by completion
// order.
type Coord struct {
	Cluster int `json:"cluster"`
	Profile int `json:"profile"`
	Target  int `json:"target"`
	Seed    int `json:"seed"`
}

// Task is one resolved grid point.
type Task struct {
	Index   int
	Coord   Coord
	Seed    int64
	Profile *cluster.TCPProfile
	Cluster ClusterSpec
	Target  Target
}

// tasks enumerates the grid in canonical order: clusters, then
// profiles, then targets, with seeds innermost so per-seed results of
// one configuration are contiguous.
func (g Grid) tasks() []Task {
	var ts []Task
	for ci, cl := range g.Clusters {
		for pi, prof := range g.Profiles {
			for ti, tg := range g.Targets {
				for si, seed := range g.Seeds {
					ts = append(ts, Task{
						Index:   len(ts),
						Coord:   Coord{Cluster: ci, Profile: pi, Target: ti, Seed: si},
						Seed:    seed,
						Profile: prof,
						Cluster: cl,
						Target:  tg,
					})
				}
			}
		}
	}
	return ts
}

// Result is one task's outcome. Everything except Elapsed is a pure
// function of the grid point, so marshalling a Result (and hence an
// Outcome) is deterministic; Elapsed is wall-clock and excluded from
// the JSON form.
type Result struct {
	Coord   Coord  `json:"coord"`
	Cluster string `json:"cluster"`
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
	Target  Target `json:"target"`

	// Series are the produced observation/prediction sweeps
	// (experiment targets).
	Series []textplot.Series `json:"series,omitempty"`
	// Metrics are named scalars: prediction errors per model for
	// experiment targets, estimated parameters and costs for
	// estimator targets.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Models carries the estimated models (estimator targets only).
	Models *models.ModelFile `json:"models,omitempty"`

	Err      string `json:"error,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`

	Elapsed time.Duration `json:"-"` // wall clock; nondeterministic

	// Wall-clock offsets from the campaign start, feeding the task
	// Gantt spans of Options.Obs; nondeterministic, hence unexported
	// and absent from the JSON form.
	wallStart, wallEnd time.Duration
}

// Options control the engine.
type Options struct {
	// Parallel is the worker count; <=0 uses GOMAXPROCS.
	Parallel int
	// TaskTimeout bounds each task's wall-clock time (0 = none). A
	// timed-out task yields an error Result; its abandoned simulation
	// finishes in the background and is discarded.
	TaskTimeout time.Duration
	// Stats, when non-nil, receives live progress counters (worker
	// utilization for a serving layer's metrics endpoint).
	Stats *Stats
	// RunTask, when non-nil, replaces the built-in task executor — the
	// fault-injection seam for robustness tests (the serving layer's
	// chaos suite scripts slow, failing and panicking tasks through
	// it). The engine's panic capture, timeout and cancellation still
	// wrap the hook exactly as they wrap real tasks.
	RunTask func(Grid, Task) Result
	// Obs, when non-nil, receives one task span per grid point (track =
	// task index, wall-clock offsets from campaign start) — a Gantt
	// chart of the pool. Task spans are emitted after all workers have
	// finished, so the trace is safe to read once Run returns. Note the
	// per-task simulation traces are NOT merged here: a Trace belongs to
	// one universe, and g.Est.Obs is ignored for exactly that reason.
	Obs *obs.Trace
}

// Outcome is a completed campaign: per-task results in grid order plus
// per-configuration aggregates across seeds. Its JSON form contains no
// wall-clock quantities, so equal grids produce byte-identical
// marshalled outcomes regardless of worker count.
type Outcome struct {
	Results    []Result    `json:"results"`
	Aggregates []Aggregate `json:"aggregates"`

	Wall time.Duration `json:"-"` // campaign wall-clock time
}

// Canonical renders the outcome's deterministic JSON form; two
// campaigns over the same grid produce identical bytes whatever the
// parallelism.
func (o *Outcome) Canonical() ([]byte, error) {
	return json.MarshalIndent(o, "", "  ")
}

// Failed counts the tasks that produced an error.
func (o *Outcome) Failed() int {
	n := 0
	for _, r := range o.Results {
		if r.Err != "" {
			n++
		}
	}
	return n
}

// Run executes the campaign: every grid task exactly once across a
// bounded worker pool, results merged by grid coordinate. A cancelled
// context stops the dispatch and marks the remaining tasks as
// cancelled; Run itself only returns an error for an invalid grid.
func Run(ctx context.Context, g Grid, o Options) (*Outcome, error) {
	// A Trace observes exactly one simulated universe and is not safe
	// for concurrent writers, so an estimation observer must not be
	// shared across the pool's tasks (see Options.Obs).
	g.Est.Obs = nil
	g = g.withDefaults()
	if err := g.validate(o.RunTask != nil); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := o.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tasks := g.tasks()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	start := time.Now()
	st := o.Stats
	if st == nil {
		st = &Stats{}
	}
	st.Workers.Store(int64(workers))
	st.Total.Store(int64(len(tasks)))

	taskFn := runTaskFn
	if o.RunTask != nil {
		taskFn = o.RunTask
	}
	results := make([]Result, len(tasks))
	queue := make(chan Task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				st.Busy.Add(1)
				results[t.Index] = execute(ctx, g, t, o.TaskTimeout, start, taskFn)
				st.Busy.Add(-1)
				st.Done.Add(1)
				if results[t.Index].Err != "" {
					st.Failed.Add(1)
				}
				if results[t.Index].Panicked {
					st.Panicked.Add(1)
				}
			}
		}()
	}
dispatch:
	for _, t := range tasks {
		select {
		case queue <- t:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(queue)
	wg.Wait()
	// Tasks never dispatched (cancelled campaign) get an explicit
	// cancellation result instead of a zero value.
	for i, t := range tasks {
		if results[i].Cluster == "" {
			r := newResult(t)
			r.Err = "campaign cancelled before the task ran"
			results[i] = r
		}
	}
	// Task Gantt spans, emitted single-threaded after the pool drained
	// so the shared trace sees no concurrent writers. A task that never
	// ran (wallEnd zero) gets no span.
	if o.Obs != nil {
		for i, t := range tasks {
			r := results[i]
			if r.wallEnd <= r.wallStart {
				continue
			}
			sp := o.Obs.Emit(obs.CatTask, t.Target.String(), t.Index, r.wallStart, r.wallEnd)
			o.Obs.Annotate(sp, t.Coord.Cluster, t.Coord.Profile, int(t.Seed))
			if r.Err != "" {
				o.Obs.Point(obs.CatFault, "task-error", t.Index, r.wallEnd)
			}
		}
	}
	out := &Outcome{Results: results, Wall: time.Since(start)}
	out.Aggregates = aggregate(g, results)
	return out, nil
}

// NewResult seeds a Result with the task's identity fields — the
// starting point for Options.RunTask hooks, which must return results
// keyed to the task they were handed.
func (t Task) NewResult() Result { return newResult(t) }

// newResult seeds a Result with the task's identity fields.
func newResult(t Task) Result {
	return Result{
		Coord:   t.Coord,
		Cluster: t.Cluster.Name,
		Profile: t.Profile.Name,
		Seed:    t.Seed,
		Target:  t.Target,
	}
}

// execute runs one task in a child goroutine with panic capture, and
// enforces the wall-clock timeout and campaign cancellation. On
// timeout or cancellation the simulation goroutine is abandoned (it
// completes in the background and its result is discarded) — the
// simulator has no preemption points, and a stuck universe must not
// stall the pool.
func execute(ctx context.Context, g Grid, t Task, timeout time.Duration, epoch time.Time, runTask func(Grid, Task) Result) Result {
	start := time.Now()
	done := make(chan Result, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				r := newResult(t)
				r.Panicked = true
				r.Err = fmt.Sprintf("panic: %v\n%s", p, debug.Stack())
				done <- r
			}
		}()
		done <- runTask(g, t)
	}()
	var timer <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		timer = tm.C
	}
	var r Result
	select {
	case r = <-done:
	case <-timer:
		r = newResult(t)
		r.Err = fmt.Sprintf("task exceeded the %v wall-clock timeout", timeout)
	case <-ctx.Done():
		r = newResult(t)
		r.Err = "campaign cancelled: " + ctx.Err().Error()
	}
	r.Elapsed = time.Since(start)
	r.wallStart = start.Sub(epoch)
	r.wallEnd = r.wallStart + r.Elapsed
	return r
}
