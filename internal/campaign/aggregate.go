package campaign

import (
	"repro/internal/stats"
)

// aggConfidence is the confidence level of the seed-sweep intervals.
const aggConfidence = 0.95

// Aggregate summarizes one (cluster, profile, target) configuration
// across the grid's seeds: point-wise series statistics and mean/CI of
// every scalar metric. Failed seeds are excluded (OK counts the
// survivors).
type Aggregate struct {
	Cluster string `json:"cluster"`
	Profile string `json:"profile"`
	Target  Target `json:"target"`
	Seeds   int    `json:"seeds"` // seeds in the grid
	OK      int    `json:"ok"`    // seeds that completed

	// Series holds point-wise mean and CI half-width across seeds for
	// every series present (with identical shape) in all surviving
	// seeds.
	Series []AggSeries `json:"series,omitempty"`
	// Metrics summarizes every scalar metric present in all surviving
	// seeds: estimated parameters and prediction errors.
	Metrics map[string]stats.Summary `json:"metrics,omitempty"`
}

// AggSeries is a seed-swept series: per-x mean and confidence band.
type AggSeries struct {
	Name   string    `json:"name"`
	X      []float64 `json:"x"`
	Mean   []float64 `json:"mean"`
	CIHalf []float64 `json:"ci_half"`
}

// aggregate groups results by (cluster, profile, target) — seeds are
// innermost in task order, so each group is a contiguous slice — and
// summarizes across seeds. Iteration follows grid order, keeping the
// output deterministic.
func aggregate(g Grid, results []Result) []Aggregate {
	nSeeds := len(g.Seeds)
	var aggs []Aggregate
	for at := 0; at < len(results); at += nSeeds {
		group := results[at : at+nSeeds]
		first := group[0]
		a := Aggregate{
			Cluster: first.Cluster,
			Profile: first.Profile,
			Target:  first.Target,
			Seeds:   nSeeds,
		}
		var ok []Result
		for _, r := range group {
			if r.Err == "" {
				ok = append(ok, r)
			}
		}
		a.OK = len(ok)
		if len(ok) > 0 {
			a.Series = aggregateSeries(ok)
			a.Metrics = aggregateMetrics(ok)
		}
		aggs = append(aggs, a)
	}
	return aggs
}

// aggregateSeries summarizes, point by point, every series that every
// surviving seed produced with the same name, length and x grid.
func aggregateSeries(ok []Result) []AggSeries {
	var out []AggSeries
	for _, ref := range ok[0].Series {
		xs := make([]float64, len(ref.Points))
		for i, p := range ref.Points {
			xs[i] = p.X
		}
		cols := make([][]float64, len(ref.Points)) // per point, one value per seed
		complete := true
		for _, r := range ok {
			match := false
			for _, s := range r.Series {
				if s.Name != ref.Name || len(s.Points) != len(ref.Points) {
					continue
				}
				match = true
				for i, p := range s.Points {
					if p.X != xs[i] {
						match = false
						break
					}
				}
				if match {
					for i, p := range s.Points {
						cols[i] = append(cols[i], p.Y)
					}
				}
				break
			}
			if !match {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		as := AggSeries{Name: ref.Name, X: xs,
			Mean:   make([]float64, len(xs)),
			CIHalf: make([]float64, len(xs))}
		for i, col := range cols {
			sum := stats.Summarize(col, aggConfidence)
			as.Mean[i] = sum.Mean
			as.CIHalf[i] = sum.CIHalf
		}
		out = append(out, as)
	}
	return out
}

// aggregateMetrics summarizes every metric present in all surviving
// seeds. Key order is irrelevant: the map marshals sorted.
func aggregateMetrics(ok []Result) map[string]stats.Summary {
	if ok[0].Metrics == nil {
		return nil
	}
	out := map[string]stats.Summary{}
	// Keyed map-to-map transform: each metric is summarized
	// independently, so iteration order cannot affect the result.
	//lmovet:commutative
	for name := range ok[0].Metrics {
		vals := make([]float64, 0, len(ok))
		for _, r := range ok {
			v, present := r.Metrics[name]
			if !present {
				vals = nil
				break
			}
			vals = append(vals, v)
		}
		if vals != nil {
			out[name] = stats.Summarize(vals, aggConfidence)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
