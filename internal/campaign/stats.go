package campaign

import "sync/atomic"

// Stats are live campaign progress counters, safe for concurrent
// reads while the campaign runs — the substrate for a serving layer's
// worker-utilization metrics.
type Stats struct {
	Total    atomic.Int64 // tasks in the grid
	Done     atomic.Int64 // tasks completed (ok or failed)
	Failed   atomic.Int64 // tasks that produced an error
	Panicked atomic.Int64 // tasks whose error was a captured panic
	Busy     atomic.Int64 // workers currently executing a task
	Workers  atomic.Int64 // pool size
}

// Snapshot is a consistent-enough copy of the counters for reporting.
type Snapshot struct {
	Total    int64 `json:"total"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Panicked int64 `json:"panicked,omitempty"`
	Busy     int64 `json:"busy"`
	Workers  int64 `json:"workers"`
}

// Snapshot reads the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Total:    s.Total.Load(),
		Done:     s.Done.Load(),
		Failed:   s.Failed.Load(),
		Panicked: s.Panicked.Load(),
		Busy:     s.Busy.Load(),
		Workers:  s.Workers.Load(),
	}
}

// Utilization is the fraction of the pool currently busy (0 when the
// campaign has not started or has finished).
func (s Snapshot) Utilization() float64 {
	if s.Workers == 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Workers)
}
