package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/cluster"
)

// BenchmarkCampaignThroughput measures campaign task throughput
// (simulation runs per second) against the worker-pool size. Tasks are
// independent 5-node het-Hockney estimations, so throughput should
// scale with workers until the host's cores saturate.
//
// Regenerate the committed snapshot with:
//
//	go test -run '^$' -bench CampaignThroughput ./internal/campaign
//
// which rewrites BENCH_campaign.json at the repository root.
func BenchmarkCampaignThroughput(b *testing.B) {
	// Run at the host's full width: a -cpu flag or an inherited
	// GOMAXPROCS=1 would otherwise serialize the worker pool and make
	// the scaling figures meaningless. The snapshot records the actual
	// width used so a single-core container's flat curve reads as what
	// it is rather than as a scheduler defect.
	prev := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(prev)
	benchGOMAXPROCS = runtime.NumCPU()

	const tasksPerRun = 8
	grid := Grid{
		Profiles: []*cluster.TCPProfile{cluster.LAM()},
		Clusters: []ClusterSpec{{Name: "table1:5", Cluster: cluster.Table1().Prefix(5)}},
		Targets:  []Target{{Kind: Estimator, ID: "hethockney"}},
	}
	for s := int64(1); s <= tasksPerRun; s++ {
		grid.Seeds = append(grid.Seeds, s)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := Run(context.Background(), grid, Options{Parallel: workers})
				if err != nil {
					b.Fatal(err)
				}
				if failed := out.Failed(); failed > 0 {
					b.Fatalf("%d tasks failed", failed)
				}
			}
			runsPerSec := float64(tasksPerRun*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(runsPerSec, "runs/s")
			b.ReportMetric(0, "ns/op") // runs/s is the meaningful figure
			recordBenchResult(workers, tasksPerRun*b.N, runsPerSec)
		})
	}
}

// benchResults accumulates the sub-benchmark figures; TestMain flushes
// them to BENCH_campaign.json when benchmarks actually ran.
var (
	benchResults    []benchResult
	benchGOMAXPROCS int
)

type benchResult struct {
	Workers    int     `json:"workers"`
	Tasks      int     `json:"tasks"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

func recordBenchResult(workers, tasks int, runsPerSec float64) {
	// Keep the last measurement per worker count (go test re-runs
	// benchmarks while calibrating b.N; the final run is the longest).
	for i := range benchResults {
		if benchResults[i].Workers == workers {
			benchResults[i] = benchResult{workers, tasks, runsPerSec}
			return
		}
	}
	benchResults = append(benchResults, benchResult{workers, tasks, runsPerSec})
}

func TestMain(m *testing.M) {
	code := m.Run()
	if len(benchResults) > 0 {
		doc := struct {
			Benchmark  string        `json:"benchmark"`
			Unit       string        `json:"unit"`
			Workload   string        `json:"workload"`
			CPUs       int           `json:"cpus"`       // worker scaling is bounded by this
			GOMAXPROCS int           `json:"gomaxprocs"` // parallelism the pool actually ran at
			Results    []benchResult `json:"results"`
		}{
			Benchmark:  "BenchmarkCampaignThroughput",
			Unit:       "simulation runs per second",
			Workload:   "8 seeds x het-Hockney estimation on a 5-node Table I prefix",
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: benchGOMAXPROCS,
			Results:    benchResults,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile("../../BENCH_campaign.json", append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign bench: writing BENCH_campaign.json: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
