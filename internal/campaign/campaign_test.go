package campaign

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// smallGrid is a fast 5-node grid exercising both target kinds across
// three seeds.
func smallGrid() Grid {
	return Grid{
		Seeds:    []int64{1, 2, 3},
		Profiles: []*cluster.TCPProfile{cluster.LAM()},
		Clusters: []ClusterSpec{{Name: "table1:5", Cluster: cluster.Table1().Prefix(5)}},
		Targets: []Target{
			{Kind: Experiment, ID: "fig1"},
			{Kind: Estimator, ID: "hethockney"},
		},
		ObsReps: 4,
	}
}

// TestDeterminismAcrossParallelism is the campaign's core contract:
// the same grid merged under one worker and under eight workers must
// produce byte-identical canonical output — seeded runs are
// deterministic, and completion order must not leak into the result.
func TestDeterminismAcrossParallelism(t *testing.T) {
	g := smallGrid()
	serial, err := Run(context.Background(), g, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), g, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := serial.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel=1 and parallel=8 outputs differ:\n--- serial ---\n%.2000s\n--- parallel ---\n%.2000s", a, b)
	}
	if serial.Failed() != 0 {
		t.Fatalf("%d tasks failed", serial.Failed())
	}
}

func TestResultsKeyedByGridCoordinates(t *testing.T) {
	g := smallGrid()
	out, err := Run(context.Background(), g, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != g.Size() {
		t.Fatalf("got %d results, want %d", len(out.Results), g.Size())
	}
	// Task order: targets outer, seeds inner.
	wantSeeds := []int64{1, 2, 3, 1, 2, 3}
	for i, r := range out.Results {
		if r.Seed != wantSeeds[i] {
			t.Fatalf("result %d has seed %d, want %d", i, r.Seed, wantSeeds[i])
		}
	}
	for i, r := range out.Results[:3] {
		if r.Target.ID != "fig1" || len(r.Series) == 0 {
			t.Fatalf("result %d: want fig1 series, got %+v", i, r.Target)
		}
		if len(r.Metrics) == 0 {
			t.Fatalf("result %d: fig1 should yield prediction-error metrics", i)
		}
	}
	for i, r := range out.Results[3:] {
		if r.Models == nil || r.Models.GetHetHockney() == nil {
			t.Fatalf("estimator result %d lost its models", i)
		}
		if r.Models.Meta == nil || r.Models.Meta.Seed != wantSeeds[3+i] {
			t.Fatalf("estimator result %d has wrong meta: %+v", i, r.Models.Meta)
		}
	}
}

func TestAggregatesSummarizeAcrossSeeds(t *testing.T) {
	g := smallGrid()
	out, err := Run(context.Background(), g, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Aggregates) != 2 {
		t.Fatalf("want 2 aggregates (one per target), got %d", len(out.Aggregates))
	}
	fig := out.Aggregates[0]
	if fig.Target.ID != "fig1" || fig.Seeds != 3 || fig.OK != 3 {
		t.Fatalf("fig1 aggregate = %+v", fig)
	}
	if len(fig.Series) == 0 {
		t.Fatal("fig1 aggregate has no seed-swept series")
	}
	for _, s := range fig.Series {
		if len(s.Mean) != len(s.X) || len(s.CIHalf) != len(s.X) {
			t.Fatalf("ragged aggregate series %q", s.Name)
		}
	}
	est := out.Aggregates[1]
	sum, present := est.Metrics["hockney.alpha"]
	if !present || sum.N != 3 {
		t.Fatalf("hockney.alpha summary missing or wrong N: %+v", est.Metrics)
	}
	if sum.Mean <= 0 {
		t.Fatalf("estimated alpha mean %v not positive", sum.Mean)
	}
}

// TestSeedSweepActuallySweeps checks that the seed axis reaches the
// simulator. Scatter-shaped runs are legitimately seed-invariant (the
// escalations are a many-to-one phenomenon), so the probe is the LMO
// estimator's gather irregularity scan, whose escalation draws — and
// therefore scan cost — depend on the seed.
func TestSeedSweepActuallySweeps(t *testing.T) {
	g := Grid{
		Seeds:    []int64{1, 2, 3},
		Clusters: []ClusterSpec{{Name: "table1:5", Cluster: cluster.Table1().Prefix(5)}},
		Targets:  []Target{{Kind: Estimator, ID: "lmo"}},
	}
	out, err := Run(context.Background(), g, Options{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	cost := out.Aggregates[0].Metrics["cost_s"]
	if cost.N != 3 || cost.StdDev == 0 {
		t.Fatalf("gather-scan cost identical across seeds; seed is not reaching the simulator: %+v", cost)
	}
	if out.Results[0].Models.GetLMO() == nil {
		t.Fatal("lmo estimator result lost its model")
	}
}

func TestPanicCaptured(t *testing.T) {
	defer func(orig func(Grid, Task) Result) { runTaskFn = orig }(runTaskFn)
	var calls atomic.Int64
	runTaskFn = func(g Grid, t Task) Result {
		if calls.Add(1) == 1 {
			panic("one bad universe")
		}
		return newResult(t)
	}
	g := smallGrid()
	out, err := Run(context.Background(), g, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() != 1 {
		t.Fatalf("want exactly the panicking task to fail, got %d failures", out.Failed())
	}
	r := out.Results[0]
	if !r.Panicked || !strings.Contains(r.Err, "one bad universe") {
		t.Fatalf("panic not captured: %+v", r)
	}
	// The rest of the campaign survived.
	if int(calls.Load()) != g.Size() {
		t.Fatalf("campaign stopped early: %d of %d tasks ran", calls.Load(), g.Size())
	}
}

func TestTaskTimeout(t *testing.T) {
	defer func(orig func(Grid, Task) Result) { runTaskFn = orig }(runTaskFn)
	runTaskFn = func(g Grid, tk Task) Result {
		if tk.Index == 0 {
			time.Sleep(2 * time.Second)
		}
		return newResult(tk)
	}
	g := smallGrid()
	start := time.Now()
	out, err := Run(context.Background(), g, Options{Parallel: 2, TaskTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("timeout did not free the worker (campaign took %v)", took)
	}
	if !strings.Contains(out.Results[0].Err, "timeout") {
		t.Fatalf("task 0 should have timed out: %+v", out.Results[0])
	}
	if out.Failed() != 1 {
		t.Fatalf("only task 0 should fail, got %d failures", out.Failed())
	}
}

func TestCancellationMarksRemainingTasks(t *testing.T) {
	defer func(orig func(Grid, Task) Result) { runTaskFn = orig }(runTaskFn)
	ctx, cancel := context.WithCancel(context.Background())
	runTaskFn = func(g Grid, tk Task) Result {
		cancel() // cancel the campaign as soon as the first task runs
		return newResult(tk)
	}
	out, err := Run(ctx, smallGrid(), Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	cancelled := 0
	for _, r := range out.Results {
		if strings.Contains(r.Err, "cancel") {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no task observed the cancellation")
	}
	if len(out.Results) != smallGrid().Size() {
		t.Fatal("cancelled campaign must still merge a result per task")
	}
}

func TestGridValidation(t *testing.T) {
	bad := []Grid{
		{},
		{Targets: []Target{{Kind: Experiment, ID: "nope"}}},
		{Targets: []Target{{Kind: Estimator, ID: "nope"}}},
		{Targets: []Target{{Kind: "wat", ID: "fig1"}}},
		{Targets: []Target{{Kind: Experiment, ID: "fig1"}},
			Clusters: []ClusterSpec{{Name: "nilcl"}}},
	}
	for i, g := range bad {
		if _, err := Run(context.Background(), g, Options{}); err == nil {
			t.Fatalf("grid %d should have been rejected", i)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	var st Stats
	g := smallGrid()
	if _, err := Run(context.Background(), g, Options{Parallel: 3, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Total != int64(g.Size()) || snap.Done != int64(g.Size()) {
		t.Fatalf("counters off: %+v", snap)
	}
	if snap.Busy != 0 || snap.Failed != 0 {
		t.Fatalf("counters off after completion: %+v", snap)
	}
	if snap.Utilization() != 0 {
		t.Fatal("idle pool should report zero utilization")
	}
}

// Custom targets are caller-defined work: valid only with a RunTask
// hook installed, rejected up front otherwise.
func TestCustomTargetsRequireRunTask(t *testing.T) {
	g := smallGrid()
	g.Targets = []Target{{Kind: Custom, ID: "gather/49152/linear+seg4096"}}
	if _, err := Run(context.Background(), g, Options{}); err == nil || !strings.Contains(err.Error(), "RunTask") {
		t.Fatalf("custom target without hook: err = %v", err)
	}
	out, err := Run(context.Background(), g, Options{
		RunTask: func(_ Grid, tk Task) Result {
			r := tk.NewResult()
			r.Metrics = map[string]float64{"makespan_s": 0.5}
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != g.Size() {
		t.Fatalf("got %d results, want %d", len(out.Results), g.Size())
	}
	for _, r := range out.Results {
		if r.Target.Kind != Custom || r.Metrics["makespan_s"] != 0.5 {
			t.Fatalf("custom result corrupted: %+v", r)
		}
	}
	// Direct use of the built-in executor fails loudly instead of
	// returning an empty success.
	r := runTask(g, Task{Target: Target{Kind: Custom, ID: "x"}, Cluster: g.Clusters[0], Profile: g.Profiles[0]})
	if !strings.Contains(r.Err, "no executor") {
		t.Fatalf("built-in executor on custom target: %+v", r)
	}
}

// TestRunTaskHook checks the fault-injection seam: Options.RunTask
// replaces the built-in executor for every task, and the engine's
// panic capture and stats accounting wrap the hook exactly as they
// wrap real tasks.
func TestRunTaskHook(t *testing.T) {
	g := smallGrid()
	var st Stats
	var hooked atomic.Int64
	out, err := Run(context.Background(), g, Options{
		Parallel: 2,
		Stats:    &st,
		RunTask: func(_ Grid, tk Task) Result {
			hooked.Add(1)
			if tk.Seed == 2 {
				panic("injected hook panic")
			}
			r := tk.NewResult()
			r.Metrics = map[string]float64{"injected": float64(tk.Seed)}
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(hooked.Load()) != g.Size() {
		t.Fatalf("hook ran %d times, want every task (%d)", hooked.Load(), g.Size())
	}
	var panicked, injected int
	for _, r := range out.Results {
		switch {
		case r.Seed == 2:
			if !r.Panicked || !strings.Contains(r.Err, "injected hook panic") {
				t.Fatalf("seed-2 task should carry the captured panic: %+v", r)
			}
			panicked++
		default:
			if r.Err != "" || r.Metrics["injected"] != float64(r.Seed) {
				t.Fatalf("hooked task result corrupted: %+v", r)
			}
			injected++
		}
	}
	if panicked == 0 || injected == 0 {
		t.Fatal("hook test must see both panicking and clean tasks")
	}
	snap := st.Snapshot()
	if snap.Panicked != int64(panicked) || snap.Failed != int64(panicked) {
		t.Fatalf("stats = %+v, want %d panicked/failed", snap, panicked)
	}
}
