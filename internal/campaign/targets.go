package campaign

import (
	"fmt"
	"strings"

	"repro/internal/estimate"
	"repro/internal/experiment"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/textplot"
)

// estimatorIDs lists the supported estimator targets.
var estimatorIDs = []string{"all", "lmo", "lmo5", "hethockney", "hockney", "logp", "plogp"}

func knownEstimator(id string) bool {
	for _, e := range estimatorIDs {
		if e == id {
			return true
		}
	}
	return false
}

// EstimatorIDs returns the supported estimator target IDs.
func EstimatorIDs() []string { return append([]string(nil), estimatorIDs...) }

// runTaskFn is the task executor; tests substitute it to exercise the
// engine's panic/timeout/cancellation paths without a simulator run.
var runTaskFn = runTask

// runTask executes one grid point in its own simulated universe.
func runTask(g Grid, t Task) Result {
	r := newResult(t)
	switch t.Target.Kind {
	case Experiment:
		runExperiment(g, t, &r)
	case Estimator:
		runEstimator(g, t, &r)
	case Custom:
		// Unreachable through Run (validate requires a RunTask hook,
		// which replaces this executor), but fail loudly for direct use.
		r.Err = fmt.Sprintf("campaign: custom target %q has no executor", t.Target.ID)
	}
	return r
}

func (g Grid) experimentConfig(t Task) experiment.Config {
	cfg := experiment.Default()
	cfg.Cluster = t.Cluster.Cluster
	cfg.Profile = t.Profile
	cfg.Seed = t.Seed
	cfg.Root = g.Root
	cfg.Est = g.Est
	if g.ObsReps > 0 {
		cfg.ObsReps = g.ObsReps
	}
	return cfg
}

func (g Grid) mpiConfig(t Task) mpi.Config {
	return mpi.Config{Cluster: t.Cluster.Cluster, Profile: t.Profile, Seed: t.Seed}
}

// runExperiment runs a figure/table reproduction and derives
// prediction-error metrics: for every prediction series, the mean
// absolute relative error against the observed series.
func runExperiment(g Grid, t Task, r *Result) {
	runner := experiment.Lookup(t.Target.ID)
	rep, err := runner.Run(g.experimentConfig(t))
	if err != nil {
		r.Err = err.Error()
		return
	}
	r.Series = rep.Series
	r.Metrics = experimentMetrics(rep)
}

// experimentMetrics compares each prediction series to the first
// series whose name starts with "observed" (the convention of every
// figure runner). Reports without series (tree/table reproductions)
// yield no metrics.
func experimentMetrics(rep *experiment.Report) map[string]float64 {
	var obs []float64
	for _, s := range rep.Series {
		if strings.HasPrefix(s.Name, "observed") {
			obs = ys(s.Points)
			break
		}
	}
	if obs == nil {
		return nil
	}
	m := map[string]float64{}
	for _, s := range rep.Series {
		if strings.HasPrefix(s.Name, "observed") || len(s.Points) != len(obs) {
			continue
		}
		m["relerr."+s.Name] = meanAbsRelError(obs, ys(s.Points))
	}
	return m
}

func ys(pts []textplot.Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Y
	}
	return out
}

// runEstimator estimates the requested model family and records both
// the models (for the registry) and flattened parameter metrics (for
// seed aggregation).
func runEstimator(g Grid, t Task, r *Result) {
	cfg := g.mpiConfig(t)
	opt := g.Est
	met := map[string]float64{}
	switch t.Target.ID {
	case "all":
		ms, err := experiment.EstimateAll(g.experimentConfig(t))
		if err != nil {
			r.Err = err.Error()
			return
		}
		r.Models = models.NewModelFile(ms.Hom, ms.Het, ms.LogP, ms.LogGP, ms.PLogP, ms.LMO)
		// Keyed map-to-map transform; per-family entries are independent.
		//lmovet:commutative
		for fam, c := range ms.EstCosts {
			met["cost_s."+fam] = c.Seconds()
		}
		lmoMetrics(met, ms.LMO)
		met["hockney.alpha"], met["hockney.beta"] = ms.Hom.Alpha, ms.Hom.Beta
	case "lmo":
		lmo, rep, err := estimate.LMOX(cfg, opt)
		if err != nil {
			r.Err = err.Error()
			return
		}
		irr, irrRep, err := estimate.DetectGatherIrregularity(
			cfg, g.Root, estimate.DefaultScanSizes(), 20, opt)
		if err != nil {
			r.Err = err.Error()
			return
		}
		lmo.Gather = irr
		r.Models = models.NewModelFile(nil, nil, nil, nil, nil, lmo)
		lmoMetrics(met, lmo)
		met["cost_s"] = (rep.Cost + irrRep.Cost).Seconds()
		met["experiments"] = float64(rep.Experiments + irrRep.Experiments)
		met["repetitions"] = float64(rep.Repetitions + irrRep.Repetitions)
	case "lmo5":
		lmo5, rep, err := estimate.LMOOriginal(cfg, opt)
		if err != nil {
			r.Err = err.Error()
			return
		}
		for i, c := range lmo5.C() {
			met[fmt.Sprintf("lmo5.C[%d]", i)] = c
		}
		for i, ti := range lmo5.T() {
			met[fmt.Sprintf("lmo5.t[%d]", i)] = ti
		}
		met["cost_s"] = rep.Cost.Seconds()
	case "hethockney":
		het, rep, err := estimate.HetHockney(cfg, opt)
		if err != nil {
			r.Err = err.Error()
			return
		}
		r.Models = models.NewModelFile(het.Averaged(), het, nil, nil, nil, nil)
		hom := het.Averaged()
		met["hockney.alpha"], met["hockney.beta"] = hom.Alpha, hom.Beta
		met["hethockney.alpha[0][1]"] = het.Alpha[0][1]
		met["hethockney.beta[0][1]"] = het.Beta[0][1]
		met["cost_s"] = rep.Cost.Seconds()
		met["experiments"] = float64(rep.Experiments)
		met["repetitions"] = float64(rep.Repetitions)
	case "hockney":
		hom, rep, err := estimate.HomHockney(cfg, opt, nil)
		if err != nil {
			r.Err = err.Error()
			return
		}
		r.Models = models.NewModelFile(hom, nil, nil, nil, nil, nil)
		met["hockney.alpha"], met["hockney.beta"] = hom.Alpha, hom.Beta
		met["cost_s"] = rep.Cost.Seconds()
	case "logp":
		logp, loggp, rep, err := estimate.LogPLogGP(cfg, opt)
		if err != nil {
			r.Err = err.Error()
			return
		}
		r.Models = models.NewModelFile(nil, nil, logp, loggp, nil, nil)
		met["logp.L"], met["logp.o"], met["logp.g"] = logp.L, logp.O, logp.G
		met["loggp.G"] = loggp.BigG
		met["cost_s"] = rep.Cost.Seconds()
	case "plogp":
		plogp, rep, err := estimate.PLogP(cfg, opt)
		if err != nil {
			r.Err = err.Error()
			return
		}
		r.Models = models.NewModelFile(nil, nil, nil, nil, plogp, nil)
		met["plogp.L"] = plogp.L
		met["plogp.g(1)"] = plogp.Gap(1)
		met["plogp.g(64K)"] = plogp.Gap(64 << 10)
		met["cost_s"] = rep.Cost.Seconds()
	}
	r.Metrics = met
	if r.Models != nil {
		r.Models.Meta = &models.Meta{
			Cluster: t.Cluster.Name,
			Nodes:   t.Cluster.Cluster.N(),
			Profile: t.Profile.Name,
			Seed:    t.Seed,
		}
	}
}

// lmoMetrics flattens the extended LMO parameters: per-node constants
// and per-byte costs, plus a representative link.
func lmoMetrics(met map[string]float64, lmo *models.LMOX) {
	for i, c := range lmo.C {
		met[fmt.Sprintf("lmo.C[%d]", i)] = c
	}
	for i, t := range lmo.T {
		met[fmt.Sprintf("lmo.t[%d]", i)] = t
	}
	if len(lmo.L) > 1 {
		met["lmo.L[0][1]"] = lmo.L[0][1]
		met["lmo.beta[0][1]"] = lmo.Beta[0][1]
	}
	if lmo.Gather.Valid() {
		met["lmo.M1"] = float64(lmo.Gather.M1)
		met["lmo.M2"] = float64(lmo.Gather.M2)
	}
}

// meanAbsRelError is the figures' accuracy metric: mean |pred-obs|/obs.
func meanAbsRelError(obs, pred []float64) float64 {
	if len(obs) == 0 {
		return 0
	}
	s := 0.0
	for i := range obs {
		if obs[i] != 0 {
			d := (pred[i] - obs[i]) / obs[i]
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s / float64(len(obs))
}
