// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure (reporting the reproduced headline quantity as a
// custom metric), plus micro-benchmarks of the substrates. Run with
//
//	go test -bench=. -benchmem
//
// The figure benchmarks use a reduced 8-node prefix of the Table I
// cluster so a full -bench=. sweep stays fast; the cmd/lmobench tool
// runs the full 16-node versions.
package commperf

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/experiment"
	"repro/internal/mpi"
	"repro/internal/tuned"
	"repro/internal/vtime"
)

// benchCfg is the reduced experiment configuration for benchmarks.
func benchCfg() experiment.Config {
	return experiment.Config{
		Cluster:  cluster.Table1().Prefix(8),
		Profile:  cluster.LAM(),
		Seed:     7,
		Root:     0,
		Sizes:    []int{1 << 10, 8 << 10, 32 << 10, 64 << 10, 128 << 10, 200 << 10},
		ObsReps:  6,
		Est:      estimate.Options{Parallel: true},
		ScanReps: 12,
	}
}

// getSeries pulls a named series' Y values out of a report.
func getSeries(b *testing.B, rep *experiment.Report, name string) []float64 {
	b.Helper()
	for _, s := range rep.Series {
		if s.Name == name {
			ys := make([]float64, len(s.Points))
			for i, p := range s.Points {
				ys[i] = p.Y
			}
			return ys
		}
	}
	b.Fatalf("series %q missing", name)
	return nil
}

func meanRelErr(obs, pred []float64) float64 {
	s := 0.0
	for i := range obs {
		d := (pred[i] - obs[i]) / obs[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(obs))
}

// BenchmarkTable1Cluster regenerates Table I.
func BenchmarkTable1Cluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables[0].Rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig1LinearScatterHockney regenerates Fig 1 and reports the
// serial/parallel het-Hockney errors.
func BenchmarkFig1LinearScatterHockney(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		obs := getSeries(b, rep, "observed")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "het-Hockney serial")), "serial-err-%")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "het-Hockney parallel")), "parallel-err-%")
	}
}

// BenchmarkFig2BinomialTree regenerates Fig 2.
func BenchmarkFig2BinomialTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3BinomialScatter regenerates Fig 3 and reports the
// hom/het Hockney errors.
func BenchmarkFig3BinomialScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		obs := getSeries(b, rep, "observed")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "hom-Hockney (eq 3)")), "hom-err-%")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "het-Hockney (eq 1)")), "het-err-%")
	}
}

// BenchmarkTable2Predictions regenerates Table II.
func BenchmarkTable2Predictions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4LinearScatterAllModels regenerates Fig 4 and reports
// each model's error on linear scatter.
func BenchmarkFig4LinearScatterAllModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		obs := getSeries(b, rep, "observed")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "LMO (eq 4)")), "lmo-err-%")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "het-Hockney")), "hockney-err-%")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "LogGP")), "loggp-err-%")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "PLogP")), "plogp-err-%")
	}
}

// BenchmarkFig5LinearGatherAllModels regenerates Fig 5 and reports each
// model's error on linear gather.
func BenchmarkFig5LinearGatherAllModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		obs := getSeries(b, rep, "observed (mean)")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "LMO (eq 5)")), "lmo-err-%")
		b.ReportMetric(100*meanRelErr(obs, getSeries(b, rep, "het-Hockney")), "hockney-err-%")
	}
}

// BenchmarkFig6AlgorithmSelection regenerates Fig 6 and reports how
// many of the decisions each model got right.
func BenchmarkFig6AlgorithmSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var rows [][]string
		for _, tb := range rep.Tables {
			if tb.Caption == "algorithm choices" {
				rows = tb.Rows
			}
		}
		hockney, lmo := 0, 0
		for _, row := range rows[1:] {
			if row[2] == row[1] {
				hockney++
			}
			if row[3] == row[1] {
				lmo++
			}
		}
		b.ReportMetric(float64(hockney), "hockney-correct")
		b.ReportMetric(float64(lmo), "lmo-correct")
		b.ReportMetric(float64(len(rows)-1), "decisions")
	}
}

// BenchmarkFig7GatherOptimization regenerates Fig 7 and reports the
// achieved speedup.
func BenchmarkFig7GatherOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		native := getSeries(b, rep, "native gather (mean)")
		opt := getSeries(b, rep, "optimized gather (mean)")
		sp := 0.0
		for j := range native {
			sp += native[j] / opt[j]
		}
		b.ReportMetric(sp/float64(len(native)), "speedup-x")
	}
}

// BenchmarkEstimationCostSerialVsParallel regenerates the §IV cost
// comparison and reports the parallel-schedule speedup.
func BenchmarkEstimationCostSerialVsParallel(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		serialOpt := cfg.Est
		serialOpt.Parallel = false
		_, repS, err := estimate.HetHockney(mpi.Config{Cluster: cfg.Cluster, Profile: cfg.Profile, Seed: cfg.Seed}, serialOpt)
		if err != nil {
			b.Fatal(err)
		}
		_, repP, err := estimate.HetHockney(mpi.Config{Cluster: cfg.Cluster, Profile: cfg.Profile, Seed: cfg.Seed}, cfg.Est)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(repS.Cost)/float64(repP.Cost), "speedup-x")
		b.ReportMetric(repS.Cost.Seconds(), "serial-s")
		b.ReportMetric(repP.Cost.Seconds(), "parallel-s")
	}
}

// BenchmarkIrregularityDetection regenerates the §III threshold
// detection and reports the found M1/M2.
func BenchmarkIrregularityDetection(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		g, _, err := estimate.DetectGatherIrregularity(
			mpi.Config{Cluster: cfg.Cluster, Profile: cfg.Profile, Seed: cfg.Seed},
			0, estimate.DefaultScanSizes(), cfg.ScanReps, cfg.Est)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.M1), "M1-bytes")
		b.ReportMetric(float64(g.M2), "M2-bytes")
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkEngineEvents measures raw event throughput of the
// simulation kernel. The allocation-free fast path makes -benchmem
// report 0 allocs/op here; internal/simbench keeps the calibrated
// before/after snapshot.
func BenchmarkEngineEvents(b *testing.B) {
	eng := vtime.NewEngine()
	eng.Go("ticker", func(p *vtime.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimScatter16 measures one simulated 16-rank binomial
// scatter per iteration.
func BenchmarkSimScatter16(b *testing.B) {
	cfg := mpi.Config{Cluster: cluster.Table1(), Profile: cluster.LAM(), Seed: 1}
	blocks := make([][]byte, 16)
	for i := range blocks {
		blocks[i] = make([]byte, 32<<10)
	}
	b.ResetTimer()
	_, err := mpi.Run(cfg, func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			r.Scatter(mpi.Binomial, 0, blocks)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLMOPredict measures the analytical prediction itself.
func BenchmarkLMOPredict(b *testing.B) {
	cfg := benchCfg()
	lmo, _, err := estimate.LMOX(mpi.Config{Cluster: cfg.Cluster, Profile: cluster.Ideal(), Seed: 1}, cfg.Est)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		sum += lmo.ScatterBinomial(0, 8, 32<<10)
	}
	_ = sum
}

// BenchmarkLMOEstimation8 measures the full LMO estimation procedure
// on 8 nodes (parallel schedule).
func BenchmarkLMOEstimation8(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		_, rep, err := estimate.LMOX(mpi.Config{Cluster: cfg.Cluster, Profile: cfg.Profile, Seed: cfg.Seed}, cfg.Est)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Cost.Seconds(), "virtual-cost-s")
	}
}

// BenchmarkAblationLMOVariants regenerates the model ablation and
// reports the C-misattribution gap.
func BenchmarkAblationLMOVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Ablation(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgZooSelection regenerates the four-algorithm selection
// study.
func BenchmarkAlgZooSelection(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{1 << 10, 32 << 10, 200 << 10}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AlgZoo(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTunedVsNativeGather compares the tuned (model-driven) gather
// against the fixed linear gather in the irregular region, reporting
// the speedup.
func BenchmarkTunedVsNativeGather(b *testing.B) {
	cfg := benchCfg()
	mcfg := mpi.Config{Cluster: cfg.Cluster, Profile: cfg.Profile, Seed: cfg.Seed}
	lmo, _, err := estimate.LMOX(mcfg, cfg.Est)
	if err != nil {
		b.Fatal(err)
	}
	irr, _, err := estimate.DetectGatherIrregularity(mcfg, 0, estimate.DefaultScanSizes(), cfg.ScanReps, cfg.Est)
	if err != nil {
		b.Fatal(err)
	}
	lmo.Gather = irr
	n := cfg.Cluster.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner := tuned.New(lmo, n)
		var tNative, tTuned time.Duration
		resN, err := mpi.Run(mcfg, func(r *mpi.Rank) {
			block := make([]byte, 30<<10)
			for rep := 0; rep < 10; rep++ {
				r.Gather(mpi.Linear, 0, block)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		tNative = resN.Duration
		resT, err := mpi.Run(mcfg, func(r *mpi.Rank) {
			block := make([]byte, 30<<10)
			for rep := 0; rep < 10; rep++ {
				tuner.Gather(r, 0, block)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		tTuned = resT.Duration
		b.ReportMetric(float64(tNative)/float64(tTuned), "speedup-x")
	}
}

// BenchmarkScatterAlgorithms measures each algorithm's simulated
// scatter makespan at 32KB on the 8-node cluster.
func BenchmarkScatterAlgorithms(b *testing.B) {
	cfg := benchCfg()
	mcfg := mpi.Config{Cluster: cfg.Cluster, Profile: cluster.Ideal(), Seed: 1}
	for _, alg := range mpi.Algorithms() {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			blocks := make([][]byte, cfg.Cluster.N())
			for i := range blocks {
				blocks[i] = make([]byte, 32<<10)
			}
			var last time.Duration
			for i := 0; i < b.N; i++ {
				res, err := mpi.Run(mcfg, func(r *mpi.Rank) {
					r.Scatter(alg, 0, blocks)
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Duration
			}
			b.ReportMetric(last.Seconds()*1e3, "virtual-ms")
		})
	}
}
