package commperf

import (
	"context"
	"fmt"

	"repro/internal/autotune"
	"repro/internal/experiment"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/tuned"
)

// Auto-tuning: model-guided collective selection. System.Tune explores
// a candidate space of (algorithm × tree degree × segment size) shapes
// per collective and message-size range, prunes it with cheap
// closed-form predictions from an estimated model, validates the
// survivors in the event simulator, and emits a versioned decision
// table a Tuner executes from.
type (
	// TunedTable is a versioned collective decision table: per-op,
	// per-message-size-range rules naming the winning shape.
	TunedTable = tuned.Table
	// TunedRule is one decision: op + byte range → algorithm shape.
	TunedRule = tuned.Rule
	// TunedOp names a tunable collective ("scatter", "gather").
	TunedOp = tuned.Op
	// TuneCandidate is one algorithm shape in the tuner's search
	// space.
	TuneCandidate = autotune.Candidate
	// TuneCell reports one (op, message size) tuning cell: the pruned
	// candidate ranking, the simulated winner and whether the
	// closed-form top pick agreed with the simulator.
	TuneCell = autotune.Cell
)

// The tunable collectives.
const (
	// OpScatter tunes the scatter collective.
	OpScatter = tuned.OpScatter
	// OpGather tunes the gather collective.
	OpGather = tuned.OpGather
)

// TunedTableVersion is the decision-table format this build reads and
// writes.
const TunedTableVersion = tuned.TableVersion

var (
	// NewTunerFromTable builds a Tuner that executes a decision table
	// (with a model fallback for uncovered sizes; nil model falls back
	// to linear).
	NewTunerFromTable = tuned.NewFromTable
	// UnmarshalTunedTable reconstructs and validates a decision table
	// from its JSON envelope, rejecting unsupported versions.
	UnmarshalTunedTable = tuned.UnmarshalTable
	// DefaultTuneCandidates enumerates the tuner's default search
	// space for a model (linear, binomial, binary, chain × segment
	// sizes, plus k-ary tree degrees).
	DefaultTuneCandidates = autotune.DefaultCandidates
	// DefaultTuneSizes is the default message-size sweep, concentrated
	// around the irregularity thresholds.
	DefaultTuneSizes = autotune.TuneSizes
)

// tuneConfig is the resolved state of a chain of TuneOptions.
type tuneConfig struct {
	opt   autotune.Options
	model models.CollectivePredictor
	obs   *obs.Trace
}

// TuneOption configures System.Tune. Options apply in call order: a
// later option overrides what an earlier one set.
type TuneOption interface{ applyTune(*tuneConfig) }

type tuneMsgSizesOption []int

func (o tuneMsgSizesOption) applyTune(c *tuneConfig) { c.opt.MsgSizes = []int(o) }

// WithTuneMsgSizes sets the probed message sizes; each becomes one
// decision-table range [size_i, size_i+1). Default: DefaultTuneSizes.
func WithTuneMsgSizes(sizes ...int) TuneOption { return tuneMsgSizesOption(sizes) }

type topKOption int

func (o topKOption) applyTune(c *tuneConfig) { c.opt.TopK = int(o) }

// WithTopK keeps the k best closed-form candidates per cell for
// simulator validation (default 3). Larger k trades tuning time for
// robustness against model mispredictions.
func WithTopK(k int) TuneOption { return topKOption(k) }

type candidatesOption []autotune.Candidate

func (o candidatesOption) applyTune(c *tuneConfig) { c.opt.Candidates = []autotune.Candidate(o) }

// WithCandidates replaces the tuner's search space.
func WithCandidates(cands ...TuneCandidate) TuneOption { return candidatesOption(cands) }

type tuneOpsOption []tuned.Op

func (o tuneOpsOption) applyTune(c *tuneConfig) { c.opt.Ops = []tuned.Op(o) }

// WithTuneOps restricts tuning to the given collectives (default
// scatter and gather).
func WithTuneOps(ops ...TunedOp) TuneOption { return tuneOpsOption(ops) }

type tuneModelOption struct{ m models.CollectivePredictor }

func (o tuneModelOption) applyTune(c *tuneConfig) { c.model = o.m }

// WithTuneModel prunes with an already-estimated model instead of
// estimating the LMO model first. Any CollectivePredictor works; an
// *LMO with gather irregularity attached gives the sharpest prune.
func WithTuneModel(m CollectivePredictor) TuneOption { return tuneModelOption{m} }

// Tuning bundles what System.Tune produced.
type Tuning struct {
	// Table is the versioned decision table; feed it to
	// NewTunerFromTable or serialize it with Marshal.
	Table *TunedTable
	// Cells are the per-(op, size) outcomes with full rankings.
	Cells []TuneCell
	// Agreement is the fraction of cells where the closed-form top
	// pick matched (within 10%) the simulated winner.
	Agreement float64
	// Candidates and Simulated count the shapes considered and the
	// simulator validations spent.
	Candidates int
	Simulated  int
	// Report is the cost of the internal model estimation (zero when
	// WithTuneModel supplied one).
	Report EstimateReport
	// Trace is the observer passed via WithObserver (nil otherwise);
	// after a successful tune it carries the span trace of the winning
	// shape's replay.
	Trace *Trace
}

// Tune auto-tunes the system's collectives: estimate the LMO model
// (unless WithTuneModel supplies one), prune the candidate space with
// its closed-form predictions, validate the top-k survivors per cell
// in the event simulator, and return the resulting decision table.
//
//	tn, err := sys.Tune(commperf.WithTuneMsgSizes(4<<10, 32<<10, 64<<10))
//	...
//	tuner, err := commperf.NewTunerFromTable(tn.Table, nil, sys.Cluster().N())
//	sys.Run(func(r *commperf.Rank) { tuner.Gather(r, 0, block) })
//
// With WithObserver the winning shape of the largest tuned cell is
// replayed once under the trace, so the tuned collective's span
// structure is inspectable.
func (s *System) Tune(opts ...TuneOption) (*Tuning, error) {
	var c tuneConfig
	for _, o := range opts {
		o.applyTune(&c)
	}
	tn := &Tuning{Trace: c.obs}
	model := c.model
	if model == nil {
		est, err := s.Estimate(ModelLMO)
		tn.Report = est.Report
		if err != nil {
			return tn, fmt.Errorf("commperf: tune: estimating the pruning model: %w", err)
		}
		model = est.LMO
	}
	cfg := experiment.Config{
		Cluster: s.cfg.Cluster, Profile: s.cfg.Profile,
		Seed: s.cfg.Seed, Faults: s.cfg.Faults,
	}
	res, err := autotune.Tune(context.Background(), cfg, model, c.opt)
	if err != nil {
		return tn, err
	}
	tn.Table = res.Table
	tn.Cells = res.Cells
	tn.Agreement = res.Agreement
	tn.Candidates = res.Candidates
	tn.Simulated = res.Simulated
	if c.obs != nil {
		if err := s.replayWinner(res.Table, c.obs); err != nil {
			return tn, err
		}
	}
	return tn, nil
}

// replayWinner re-runs the decision table's last rule (the largest
// tuned range; gather preferred) once with the observer attached.
func (s *System) replayWinner(tbl *tuned.Table, tr *obs.Trace) error {
	var rule *tuned.Rule
	for i := range tbl.Rules {
		r := &tbl.Rules[i]
		if rule == nil || r.Op == tuned.OpGather {
			rule = r
		}
	}
	if rule == nil {
		return nil
	}
	alg, err := rule.AlgValue()
	if err != nil {
		return err
	}
	m := rule.MinBytes
	if m == 0 {
		m = 1 << 10
	}
	cfg := s.cfg
	cfg.Obs = tr
	n := cfg.Cluster.N()
	_, err = mpi.Run(cfg, func(r *mpi.Rank) {
		if rule.Op == tuned.OpGather {
			optimize.ExecGather(r, alg, rule.Degree, rule.Segment, tbl.Root, make([]byte, m))
			return
		}
		var blocks [][]byte
		if r.Rank() == tbl.Root {
			blocks = make([][]byte, n)
			for i := range blocks {
				blocks[i] = make([]byte, m)
			}
		}
		optimize.ExecScatter(r, alg, rule.Degree, rule.Segment, tbl.Root, m, blocks)
	})
	return err
}
