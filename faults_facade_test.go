package commperf

import (
	"errors"
	"testing"
	"time"
)

func faultySystem(n int) *System {
	cl := Homogeneous(n,
		NodeSpec{C: 50 * time.Microsecond, T: 4e-9},
		LinkSpec{L: 40 * time.Microsecond, Beta: 1e8})
	return NewSystem(cl, Ideal(), 1)
}

// TestSystemEstimateLMOUnderFaults is the acceptance scenario at the
// facade: with the reference fault plan installed, System.EstimateLMO
// must complete without panic or deadlock and report how it degraded.
func TestSystemEstimateLMOUnderFaults(t *testing.T) {
	const n = 6
	sys := faultySystem(n).WithFaults(DemoFaults(n))
	if sys.Faults() == nil {
		t.Fatal("WithFaults did not install the plan")
	}
	lmo, rep, err := sys.EstimateLMO(EstimateOptions{
		Parallel: true,
		Mpib:     MeasureOptions{OutlierMAD: 3, Retries: 2, MaxReps: 40},
	})
	if err != nil {
		t.Fatalf("EstimateLMO under the demo fault plan: %v", err)
	}
	if rep.Experiments == 0 || rep.Cost <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Confidence) != n {
		t.Fatalf("Confidence has %d entries, want %d", len(rep.Confidence), n)
	}
	if pred := lmo.ScatterLinear(0, n, 32<<10); pred <= 0 {
		t.Fatalf("nonsense prediction %v from the fault-estimated model", pred)
	}
}

// TestSystemRunSurfacesCrash: a crashed non-root node turns into a
// typed CrashError from Run, not a hang.
func TestSystemRunSurfacesCrash(t *testing.T) {
	sys := faultySystem(4).WithFaults(&FaultPlan{
		Crashes: []Crash{{Node: 2, At: 100 * time.Microsecond}},
	})
	_, err := sys.Run(func(r *Rank) {
		r.Sleep(time.Millisecond)
		r.Gather(Linear, 0, make([]byte, 1<<10))
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want a CrashError", err)
	}
	if len(ce.Nodes) != 1 || ce.Nodes[0] != 2 {
		t.Fatalf("crashed nodes = %v, want [2]", ce.Nodes)
	}
}

// TestSystemFaultDeterminism: the same system and plan reproduce the
// same injector activity and the same virtual duration.
func TestSystemFaultDeterminism(t *testing.T) {
	run := func() JobResult {
		sys := faultySystem(4).WithFaults(&FaultPlan{
			Loss: []LinkLoss{{Src: AnyNode, Dst: 0, Prob: 0.2, RTO: 5 * time.Millisecond}},
		})
		res, err := sys.Run(func(r *Rank) {
			for i := 0; i < 20; i++ {
				r.Gather(Linear, 0, make([]byte, 2<<10))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.Faults != b.Faults {
		t.Fatalf("same seed diverged: %v/%+v vs %v/%+v", a.Duration, a.Faults, b.Duration, b.Faults)
	}
	if a.Faults.Lost == 0 {
		t.Fatal("20% loss over 20 gathers lost nothing")
	}
}
